/// Microbenchmark — streaming-profiler overhead on the Fig-6 scenario.
///
/// The observability contract is that instrumentation stays within the
/// < 2 % tracing budget. This bench replays the fig06 two-task scenario
/// three ways — no sink at all, a null sink (the cost of event *emission*),
/// and a live obs::Profiler (emission + cycle attribution) — and reports
/// the wall-clock deltas. The profiler's marginal cost over the null sink
/// is the number the budget constrains. Results go to stdout and
/// BENCH_profiler.json.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>

#include "rispp/bench/meta_block.hpp"
#include "rispp/obs/profiler.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/table.hpp"

namespace {

struct NullSink final : rispp::obs::EventSink {
  void on_event(const rispp::obs::Event&) override {}
};

void add_fig06_tasks(rispp::sim::Simulator& sim,
                     const rispp::isa::SiLibrary& lib) {
  using namespace rispp::sim;
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");
  Trace a;
  a.push_back(TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(TraceOp::compute(10000));
    a.push_back(TraceOp::si(satd, 50));
  }
  Trace b;
  b.push_back(TraceOp::forecast(si0, 50));
  b.push_back(TraceOp::compute(700000));
  b.push_back(TraceOp::si(si0, 20));
  b.push_back(TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(TraceOp::compute(40000));
    b.push_back(TraceOp::si(si1, 100));
  }
  b.push_back(TraceOp::release(si1));
  b.push_back(TraceOp::si(si0, 20));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
}

/// Wall time of one full fig06 run with the given sink (nullptr = events
/// disabled entirely).
double run_ms(const rispp::isa::SiLibrary& lib, rispp::obs::EventSink* sink) {
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  cfg.rt.sink = sink;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  add_fig06_tasks(sim, lib);
  const auto t0 = std::chrono::steady_clock::now();
  (void)sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) try {
  using rispp::util::TextTable;

  const char* out_path = "BENCH_profiler.json";
  int reps = 60;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = argv[i] + 6;
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
  }

  const auto lib = rispp::isa::SiLibrary::h264();
  NullSink null_sink;
  rispp::sim::SimConfig meta_cfg;
  meta_cfg.rt.atom_containers = 6;
  const auto meta = make_trace_meta(lib, meta_cfg, {"A", "B"});

  // Interleave the three configurations inside each repetition and keep the
  // per-configuration minimum: on a shared machine a load spike then hits
  // all three equally instead of biasing whichever block it lands in, and
  // best-of-N filters the remaining scheduler noise. The profiler is
  // stateful, so each repetition streams into a fresh one and finalize()
  // sees exactly one run.
  double bare = 1e300, null_ms = 1e300, prof_ms = 1e300;
  std::optional<rispp::obs::Profiler> profiler;
  for (int i = 0; i < reps; ++i) {
    bare = std::min(bare, run_ms(lib, nullptr));
    null_ms = std::min(null_ms, run_ms(lib, &null_sink));
    prof_ms = std::min(prof_ms, run_ms(lib, &profiler.emplace(meta)));
  }
  const auto report = profiler->finalize("fig06");

  const auto pct = [](double x, double base) {
    return base > 0 ? (x - base) / base * 100.0 : 0.0;
  };
  const double emission_pct = pct(null_ms, bare);
  const double profiler_pct = pct(prof_ms, null_ms);

  TextTable t{"configuration", "best wall [ms]", "overhead"};
  t.set_title("Profiler overhead on fig06 (best of " + std::to_string(reps) +
              " runs)");
  t.add_row({"no sink", TextTable::num(bare, 3), "-"});
  t.add_row({"null sink (emission only)", TextTable::num(null_ms, 3),
             TextTable::num(emission_pct, 2) + "% vs no sink"});
  t.add_row({"obs::Profiler (attribution)", TextTable::num(prof_ms, 3),
             TextTable::num(profiler_pct, 2) + "% vs null sink"});
  std::cout << t.str();
  std::cout << "Events profiled per run: " << report.counts.events
            << "; tracing budget: < 2% marginal cost for the profiler over "
               "the null sink.\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"meta\": " << rispp::bench::meta_block("profiler_overhead")
       << ",\n"
       << "  \"scenario\": \"fig06\",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"events_per_run\": " << report.counts.events << ",\n"
       << "  \"no_sink_ms\": " << bare << ",\n"
       << "  \"null_sink_ms\": " << null_ms << ",\n"
       << "  \"profiler_ms\": " << prof_ms << ",\n"
       << "  \"emission_overhead_pct\": " << emission_pct << ",\n"
       << "  \"profiler_overhead_pct\": " << profiler_pct << ",\n"
       << "  \"budget_pct\": 2.0\n"
       << "}\n";
  std::cout << "Wrote " << out_path << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
