/// Fig 4 — "Forecast Decision Function (FDF)".
///
/// Regenerates the paper's FDF surface: minimal number of SI usages needed
/// to become a Forecast Candidate, over temporal distance (relative to the
/// SI's rotation time, log scale 0.1–100) and reach probability (40–100 %).
/// Parameters are derived for SATD_4x4 exactly as the forecast pass derives
/// them. Also emits the surface as CSV for plotting.

#include <cmath>
#include <fstream>
#include <iostream>

#include "rispp/forecast/forecast_pass.hpp"
#include "rispp/isa/si_library.hpp"
#include "rispp/util/csv.hpp"
#include "rispp/util/table.hpp"

int main() {
  using rispp::util::TextTable;
  const auto lib = rispp::isa::SiLibrary::h264();
  rispp::forecast::ForecastConfig cfg;
  cfg.alpha = 0.02;  // low energy bar: the paper's plateau sits near zero

  const auto params =
      rispp::forecast::fdf_params_for(lib, lib.index_of("SATD_4x4"), cfg);
  const rispp::forecast::Fdf fdf(params);

  std::cout << "FDF for SATD_4x4: T_Rot = "
            << TextTable::num(params.t_rot_cycles, 0)
            << " cycles, T_SW = " << params.t_sw_cycles
            << " cycles, offset = " << TextTable::num(fdf.offset(), 1)
            << " executions\n\n";

  // The paper's log-scale axis: 0.1 … 100 in 16 steps of x10^(1/8).
  std::vector<double> rels;
  for (int i = 0; i <= 15; ++i) rels.push_back(0.1 * std::pow(10.0, i / 5.0));

  TextTable t;
  std::vector<std::string> header{"p \\ t/T_Rot"};
  for (double r : rels) header.push_back(TextTable::num(r, 1));
  t.set_header(header);
  t.set_title(
      "Fig 4: minimal SI usages to issue a Forecast Candidate "
      "[#SI usages] (rows: probability)");

  std::ofstream csv_file("fig04_fdf_surface.csv");
  rispp::util::CsvWriter csv(csv_file);
  csv.row("probability", "t_rel", "required_usages");

  for (int pi = 100; pi >= 40; pi -= 10) {
    const double p = pi / 100.0;
    std::vector<std::string> row{std::to_string(pi) + "%"};
    for (double r : rels) {
      const double v = fdf(p, r * params.t_rot_cycles);
      row.push_back(TextTable::num(v, 0));
      csv.row(TextTable::num(p, 2), TextTable::num(r, 3), TextTable::num(v, 2));
    }
    t.add_row(row);
  }
  std::cout << t.str();
  std::cout << "\n(surface written to fig04_fdf_surface.csv; shape: high near"
               " t<T_Rot, plateau at the offset for 1-10 T_Rot, rising again"
               " beyond ~10 T_Rot — cf. paper Fig 4)\n";
  return 0;
}
