/// Fault sweep (DESIGN.md §9) — resilience of the reconfiguration path.
///
/// Sweeps the per-transfer failure probability against two retry budgets on
/// the Fig-7 encoder workload and reports how total cycles, the HW/SW
/// execution mix and the fault counters respond. Runs on the exp:: engine;
/// the sweep is executed once serially and once with a parallel worker pool
/// and the two renderings are compared byte-for-byte — fault outcomes are a
/// pure function of (seed, transfer index), so the worker count must not
/// leak into any cell.
///
///   fault_sweep [--jobs=N] [--out=BENCH_fault.json]
///
/// Output: BENCH_fault.json with the grid description, the byte-identity
/// verdict, and the full result table (cycles vs fault_p per retry budget).

#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "rispp/bench/meta_block.hpp"
#include "rispp/exp/platform.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/util/table.hpp"

int main(int argc, char** argv) try {
  using rispp::util::TextTable;

  unsigned jobs = std::max(2u, std::thread::hardware_concurrency());
  std::string out_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0)
      jobs = static_cast<unsigned>(std::stoul(arg.substr(7)));
    else if (arg.rfind("--out=", 0) == 0)
      out_path = arg.substr(6);
    else {
      std::cerr << "usage: fault_sweep [--jobs=N] [--out=FILE]\n";
      return 2;
    }
  }

  const auto platform = rispp::exp::Platform::builtin("h264");

  // fault_p = 0 keeps the fault machinery engaged (the model draws, the
  // extra metric columns render) but never fires — the clean baseline row
  // of each retry budget. The retries axis spans no-retry (every failure
  // quarantines its container immediately) vs the default budget.
  rispp::exp::Sweep sweep;
  sweep.axis("workload", {"fig7"})
      .axis("containers", {"4"})
      .axis("mb", {"60"})
      .axis("fault_p", {"0", "0.02", "0.05", "0.1", "0.2", "0.4"})
      .axis("retries", {"0", "3"})
      .axis("fault_seed", {"9001"});

  const auto serial = rispp::exp::run_sim_sweep(platform, sweep, 1);
  const auto parallel = rispp::exp::run_sim_sweep(platform, sweep, jobs);
  const bool identical = serial.json() == parallel.json();

  TextTable t{"fault_p", "retries", "cycles", "rotations", "failed",
              "retried", "quarantined", "hw execs", "sw execs"};
  t.set_title("Fault sweep: Fig-7 encoder, 4 atom containers, 60 MBs");
  for (const auto& row : serial.rows())
    t.add_row({row.at("fault_p"), row.at("retries"),
               TextTable::grouped(std::stoll(row.at("cycles"))),
               row.at("rotations"), row.at("rotations_failed"),
               row.at("rotation_retries"), row.at("acs_quarantined"),
               TextTable::grouped(std::stoll(row.at("si_hw"))),
               TextTable::grouped(std::stoll(row.at("si_sw")))});
  std::cout << t.str();
  std::cout << (identical ? "(jobs=1 and jobs=" + std::to_string(jobs) +
                                " renderings are byte-identical)\n"
                          : "ERROR: worker count leaked into the results\n");

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"meta\": " << rispp::bench::meta_block("fault_sweep") << ",\n"
      << "  \"grid\": \"fault_p x retries, fig7 encoder, 4 containers, "
         "60 macroblocks, " << sweep.points().size() << " points\",\n"
      << "  \"jobs_compared\": [1, " << jobs << "],\n"
      << "  \"byte_identical_across_jobs\": "
      << (identical ? "true" : "false") << ",\n"
      << "  \"table\": " << serial.json() << "\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return identical ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
