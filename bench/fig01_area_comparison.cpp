/// Fig 1 — "Comparison of Extensible Processors and RISPP".
///
/// Reproduces the paper's motivational area study: the extensible processor
/// dedicates gate equivalents to every functional block's Special
/// Instructions even though only one block is active at a time; RISPP
/// provisions α·GE_max and time-multiplexes it. Prints the per-block
/// time/area mix, the GE saving over an α sweep, and the same contrast in
/// Atom terms using the Table-2 library (ASIP atom sum vs RISPP supremum).

#include <iostream>

#include "rispp/baseline/asip.hpp"
#include "rispp/hw/area_model.hpp"
#include "rispp/util/table.hpp"

int main() {
  using rispp::util::TextTable;

  const auto model = rispp::hw::AreaModel::h264_default();

  TextTable blocks{"block", "time share [%]", "dedicated GE", "idle GE-share [%]"};
  blocks.set_title(
      "Fig 1(a): H.264 functional blocks — processing-time share vs dedicated "
      "SI hardware (extensible processor)");
  for (const auto& b : model.blocks()) {
    blocks.add_row({b.name, TextTable::num(b.time_share * 100, 1),
                    TextTable::grouped(static_cast<long long>(b.gate_equivalents)),
                    TextTable::num((1.0 - b.time_share) * 100, 1)});
  }
  std::cout << blocks.str() << "\n";
  std::cout << "Extensible processor GE_total = "
            << TextTable::grouped(static_cast<long long>(model.total_ge()))
            << ", largest hot-spot block GE_max = "
            << TextTable::grouped(static_cast<long long>(model.max_ge()))
            << " (MC)\n\n";

  TextTable sweep{"alpha", "RISPP GE = alpha*GE_max", "GE saving [%]",
                  "fits GE_constraint=150k"};
  sweep.set_title("Fig 1(b): RISPP provisioning over the alpha trade-off");
  for (double alpha : {1.0, 1.1, 1.2, 1.3, 1.5, 1.75, 2.0, 2.5}) {
    sweep.add_row({TextTable::num(alpha, 2),
                   TextTable::grouped(static_cast<long long>(model.rispp_ge(alpha))),
                   TextTable::num(model.ge_saving_percent(alpha), 1),
                   model.fits(alpha, 150000) ? "yes" : "no"});
  }
  std::cout << sweep.str() << "\n";

  // The same contrast at Atom granularity, from the Table-2 library.
  const auto lib = rispp::isa::SiLibrary::h264();
  const rispp::baseline::Asip asip(lib);  // fastest molecule per SI
  const auto& cat = lib.catalog();
  rispp::atom::Molecule sup = cat.zero();
  for (const auto& si : lib.sis())
    sup = sup.unite(cat.project_rotatable(asip.chosen(si.name()).atoms));

  std::uint64_t sup_slices = 0;
  for (std::size_t i = 0; i < cat.size(); ++i)
    sup_slices += static_cast<std::uint64_t>(sup[i]) * cat.at(i).hardware.slices;

  TextTable atoms{"architecture", "atom instances", "slices"};
  atoms.set_title(
      "Fig 1(c): dedicated hardware, Atom terms (fastest Molecule per SI)");
  atoms.add_row({"Extensible processor (sum over SIs)",
                 std::to_string(asip.dedicated_atom_count()),
                 TextTable::grouped(static_cast<long long>(asip.dedicated_slices()))});
  atoms.add_row({"RISPP (supremum, time-multiplexed)",
                 std::to_string(sup.determinant()),
                 TextTable::grouped(static_cast<long long>(sup_slices))});
  std::cout << atoms.str();
  const double saving =
      100.0 * (1.0 - static_cast<double>(sup_slices) /
                         static_cast<double>(asip.dedicated_slices()));
  std::cout << "RISPP atom-level slice saving: " << TextTable::num(saving, 1)
            << " %\n";
  return 0;
}
