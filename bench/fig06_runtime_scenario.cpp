/// Fig 6 — "Scenario of the H.264 showing the run-time architecture
/// capabilities".
///
/// Two quasi-parallel tasks share six Atom Containers:
///   T0  steady state — Task A's SATD_4x4 runs on its Molecule; Task B's
///       SI0 (HT_2x2 here) executes on the shared Transform atom.
///   T1  Task B forecasts the more important SI1 (HT_4x4) — reallocation:
///       containers rotate to HT's wide Molecule, Task A falls back to the
///       software Molecule.
///   T2  SI1 is forecasted to be no longer needed — release triggers
///       re-rotation towards SATD_4x4.
///   T3  Task B's SI0 still executes in hardware on containers that now
///       'belong' to Task A (the Transform atom is shared).
///   T4  a container completes — SATD_4x4 switches from SW to its minimal
///       hardware Molecule.
///   T5  another container completes — SATD_4x4 upgrades to a faster
///       Molecule.
///
/// The bench prints the simulator timeline and the manager's event trace.

#include <iostream>

#include "rispp/obs/profiler.hpp"
#include "rispp/obs/report.hpp"
#include "rispp/obs/trace_export.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/table.hpp"
#include "rispp/workload/trace_source.hpp"

int main(int argc, char** argv) try {
  using namespace rispp::sim;
  using rispp::util::TextTable;

  const auto lib = rispp::isa::SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");

  const auto trace_out = rispp::obs::trace_out_arg(argc, argv);
  const auto report_out = rispp::obs::report_out_arg(argc, argv);
  SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  const auto meta = make_trace_meta(lib, cfg, {"A", "B"});
  // The recorder feeds the trace file, the profiler streams the run report;
  // either can be absent without the other paying for it.
  rispp::obs::TraceRecorder recorder;
  rispp::obs::Profiler profiler(meta);
  rispp::obs::TeeSink tee(trace_out ? &recorder : nullptr,
                          report_out ? &profiler : nullptr);
  if (trace_out || report_out) cfg.rt.sink = &tee;
  Simulator sim(borrow(lib), cfg);

  Trace a;
  a.push_back(TraceOp::label("T0: steady state — A forecasts SATD_4x4"));
  a.push_back(TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(TraceOp::compute(10000));
    a.push_back(TraceOp::si(satd, 50));
  }

  Trace b;
  b.push_back(TraceOp::forecast(si0, 50));
  b.push_back(TraceOp::compute(700000));  // let T0 settle
  b.push_back(TraceOp::si(si0, 20));
  b.push_back(TraceOp::label("T1: B forecasts the more important SI1"));
  b.push_back(TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(TraceOp::compute(40000));
    b.push_back(TraceOp::si(si1, 100));
  }
  b.push_back(TraceOp::label("T2: forecast states SI1 no longer needed"));
  b.push_back(TraceOp::release(si1));
  b.push_back(TraceOp::label("T3: B's SI0 reuses containers now owned by A"));
  b.push_back(TraceOp::si(si0, 20));

  rispp::workload::TraceSource::make_fixed(
      {{"A", std::move(a)}, {"B", std::move(b)}}, "fig06")
      ->add_to(sim);
  const auto r = sim.run();

  TextTable timeline{"cycle", "task", "event"};
  timeline.set_title("Fig 6: scenario timeline markers");
  for (const auto& e : r.timeline)
    timeline.add_row({TextTable::grouped(static_cast<long long>(e.at)), e.task,
                      e.text});
  std::cout << timeline.str() << "\n";

  // Condensed manager trace: forecasts, rotations, and the first execution
  // after each latency change (the SW→HW→faster-HW upgrades of T4/T5).
  TextTable events{"cycle", "event", "SI", "atom", "AC", "task", "cycles"};
  events.set_title("Run-time manager event trace (condensed)");
  std::uint32_t last_cycles[16] = {0};
  for (const auto& e : r.rt_events) {
    const bool exec = e.kind == rispp::rt::RtEvent::Kind::ExecuteHw ||
                      e.kind == rispp::rt::RtEvent::Kind::ExecuteSw;
    if (exec) {
      // Only print executions whose latency changed — the upgrade points.
      if (last_cycles[e.si_index % 16] == e.cycles) continue;
      last_cycles[e.si_index % 16] = e.cycles;
    }
    if (e.kind == rispp::rt::RtEvent::Kind::Reallocation) continue;
    events.add_row({
        TextTable::grouped(static_cast<long long>(e.at)),
        rispp::rt::to_string(e.kind),
        e.si_index < lib.size() ? lib.at(e.si_index).name() : "-",
        e.atom_kind ? lib.catalog().at(*e.atom_kind).name : "-",
        e.container ? std::to_string(*e.container) : "-",
        e.task >= 0 ? std::string(1, static_cast<char>('A' + e.task)) : "-",
        e.cycles ? std::to_string(e.cycles) : "-",
    });
  }
  std::cout << events.str() << "\n";

  TextTable stats{"SI", "invocations", "hw", "sw"};
  stats.set_title("Execution mix");
  for (const auto& [name, st] : r.per_si)
    stats.add_row({name, std::to_string(st.invocations),
                   std::to_string(st.hw_invocations),
                   std::to_string(st.sw_invocations)});
  std::cout << stats.str();
  std::cout << "Rotations performed: " << r.rotations << "\n";

  if (trace_out) {
    rispp::obs::write_trace_file(*trace_out, recorder.events(), meta);
    std::cout << "Trace (" << recorder.events().size() << " events) written to "
              << *trace_out
              << " — open .json output in chrome://tracing or Perfetto,\n"
                 "or summarize .csv output with tools/trace_summary.\n";
  }
  if (report_out) {
    rispp::obs::write_report_file(*report_out, profiler.finalize("fig06"));
    std::cout << "Run report written to " << *report_out
              << " — render or diff it with tools/rispp_report.\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
