/// Kernel-throughput headline — simulated cycles per wall-clock second.
///
/// ROADMAP item 2's metric: how fast does the simulator kernel itself run?
/// The bench replays the Fig-6 two-task scenario (the same workload every
/// golden trace and the profiler bench use) plus a many-task contention
/// scenario, and reports simulated cycles / second, best-of-N so scheduler
/// noise on a shared host is filtered out. Results go to stdout and
/// BENCH_kernel.json; CI runs a small-rep smoke so the number stays wired.
///
/// Configurations measured per scenario:
///   * fast    — the default kernel (runnable-ring scheduler, cached wakeup
///               horizon, devirtualized policy dispatch, batched emission),
///   * legacy  — the seed-equivalent driving (linear O(T) task scan +
///               poll-every-switch), kept as a measurement mode,
///   * sink    — the fast kernel with a null EventSink attached (the
///               batched-emission path under load).
///
/// The fig06 result must stay behaviour-identical to the goldens: the bench
/// cross-checks total cycles and rotation counts between the fast and
/// legacy kernels and fails loudly on any mismatch, so the throughput
/// headline can never silently buy speed with changed behaviour.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "rispp/bench/meta_block.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/table.hpp"

namespace {

using namespace rispp::sim;

struct NullSink final : rispp::obs::EventSink {
  void on_event(const rispp::obs::Event&) override {}
};

/// The exact Fig-6 scenario of bench/fig06_runtime_scenario.cpp.
void add_fig06_tasks(Simulator& sim, const rispp::isa::SiLibrary& lib) {
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");
  Trace a;
  a.push_back(TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(TraceOp::compute(10000));
    a.push_back(TraceOp::si(satd, 50));
  }
  Trace b;
  b.push_back(TraceOp::forecast(si0, 50));
  b.push_back(TraceOp::compute(700000));
  b.push_back(TraceOp::si(si0, 20));
  b.push_back(TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(TraceOp::compute(40000));
    b.push_back(TraceOp::si(si1, 100));
  }
  b.push_back(TraceOp::release(si1));
  b.push_back(TraceOp::si(si0, 20));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
}

/// Many-task contention: `tasks` round-robin tasks, every fourth one a
/// short early finisher so the scheduler keeps running over a mixed
/// done/runnable task vector — the shape that exposes an O(T) task scan.
void add_many_tasks(Simulator& sim, const rispp::isa::SiLibrary& lib,
                    int tasks) {
  const auto satd = lib.index_of("SATD_4x4");
  const auto dct = lib.index_of("DCT_4x4");
  for (int t = 0; t < tasks; ++t) {
    Trace tr;
    if (t % 4 == 0) {
      tr.push_back(TraceOp::compute(500));
    } else {
      tr.push_back(TraceOp::forecast(t % 2 ? satd : dct, 200));
      for (int i = 0; i < 6; ++i) {
        tr.push_back(TraceOp::compute(2000));
        tr.push_back(TraceOp::si(t % 2 ? satd : dct, 5));
      }
      tr.push_back(TraceOp::release(t % 2 ? satd : dct));
    }
    sim.add_task({"t" + std::to_string(t), std::move(tr)});
  }
}

enum class Scenario { Fig06, ManyTask };

struct Measurement {
  std::uint64_t sim_cycles = 0;
  std::uint64_t rotations = 0;
  double best_ms = 1e300;
  double cps = 0;  ///< simulated cycles per wall-clock second
};

Measurement measure(const rispp::isa::SiLibrary& lib, Scenario scenario,
                    int tasks, int reps, bool legacy,
                    rispp::obs::EventSink* sink) {
  Measurement m;
  for (int i = 0; i < reps; ++i) {
    SimConfig cfg;
    cfg.rt.atom_containers = 6;
    cfg.quantum = 25000;
    cfg.rt.sink = sink;
    if (legacy) {
      cfg.driving = Driving::PollEverySwitch;
      cfg.scheduler = Scheduler::LinearScan;
    }
    Simulator sim(borrow(lib), cfg);
    scenario == Scenario::Fig06 ? add_fig06_tasks(sim, lib)
                                : add_many_tasks(sim, lib, tasks);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    const auto ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.best_ms = std::min(m.best_ms, ms);
    m.sim_cycles = r.total_cycles;
    m.rotations = r.rotations;
  }
  m.cps = m.best_ms > 0
              ? static_cast<double>(m.sim_cycles) / (m.best_ms / 1000.0)
              : 0;
  return m;
}

}  // namespace

int main(int argc, char** argv) try {
  using rispp::util::TextTable;

  const char* out_path = "BENCH_kernel.json";
  int reps = 40;
  int many = 512;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = argv[i] + 6;
    if (arg.rfind("--reps=", 0) == 0) reps = std::stoi(arg.substr(7));
    if (arg.rfind("--tasks=", 0) == 0) many = std::stoi(arg.substr(8));
  }

  const auto lib = rispp::isa::SiLibrary::h264();
  NullSink null_sink;

  const auto fig06 = measure(lib, Scenario::Fig06, 0, reps, false, nullptr);
  const auto fig06_legacy =
      measure(lib, Scenario::Fig06, 0, reps, true, nullptr);
  const auto fig06_sink =
      measure(lib, Scenario::Fig06, 0, reps, false, &null_sink);
  const auto mt = measure(lib, Scenario::ManyTask, many, reps, false, nullptr);
  const auto mt_legacy =
      measure(lib, Scenario::ManyTask, many, reps, true, nullptr);

  // The throughput headline is only honest while both kernels simulate the
  // exact same platform: identical cycle counts and rotation counts.
  if (fig06.sim_cycles != fig06_legacy.sim_cycles ||
      fig06.rotations != fig06_legacy.rotations ||
      mt.sim_cycles != mt_legacy.sim_cycles ||
      mt.rotations != mt_legacy.rotations) {
    std::cerr << "error: fast and legacy kernels diverged (cycles/rotations "
                 "mismatch) — throughput numbers would be meaningless\n";
    return 1;
  }

  TextTable t{"scenario", "kernel", "sim cycles", "best wall [ms]",
              "Mcycles/s"};
  t.set_title("Kernel throughput (best of " + std::to_string(reps) +
              " runs)");
  const auto row = [&](const char* sc, const char* k, const Measurement& m) {
    t.add_row({sc, k, TextTable::grouped(static_cast<long long>(m.sim_cycles)),
               TextTable::num(m.best_ms, 3), TextTable::num(m.cps / 1e6, 1)});
  };
  row("fig06", "fast", fig06);
  row("fig06", "legacy", fig06_legacy);
  row("fig06", "fast+sink", fig06_sink);
  row(("many-task (" + std::to_string(many) + ")").c_str(), "fast", mt);
  row(("many-task (" + std::to_string(many) + ")").c_str(), "legacy",
      mt_legacy);
  std::cout << t.str();
  std::cout << "fig06 speedup (fast vs legacy driving): "
            << TextTable::num(fig06.cps / fig06_legacy.cps, 2) << "x\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"meta\": " << rispp::bench::meta_block("kernel_throughput")
       << ",\n"
       << "  \"scenario\": \"fig06\",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"fig06_sim_cycles\": " << fig06.sim_cycles << ",\n"
       << "  \"fig06_rotations\": " << fig06.rotations << ",\n"
       << "  \"fig06_cps\": " << fig06.cps << ",\n"
       << "  \"fig06_legacy_cps\": " << fig06_legacy.cps << ",\n"
       << "  \"fig06_sink_cps\": " << fig06_sink.cps << ",\n"
       << "  \"many_task_count\": " << many << ",\n"
       << "  \"many_task_sim_cycles\": " << mt.sim_cycles << ",\n"
       << "  \"many_task_cps\": " << mt.cps << ",\n"
       << "  \"many_task_legacy_cps\": " << mt_legacy.cps << "\n"
       << "}\n";
  std::cout << "Wrote " << out_path << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
