/// Microbenchmark — the reallocation kernel's hot path under forecast-heavy
/// multi-task load.
///
/// The seed run-time re-ran the full greedy selector on every forecast(),
/// forecast_release() *and* poll(): with a small quantum the per-task-switch
/// polls dominate, so the selector executed once per kernel entry even when
/// nothing changed. Two independent layers now remove that work:
///   1. the kernel caches the SelectionPlan behind a demand-generation
///      counter and re-plans only when a forecast fired or a rotation
///      completed (visible even under seed-style every-switch polling),
///   2. the simulator polls via rotation-completion wakeups instead of at
///      every task switch, so most kernel entries never happen at all.
///
/// The bench replays an encoder+decoder co-run with a deliberately small
/// quantum in both driving modes. `seed_baseline_plan_invocations` is the
/// number of kernel entries under every-switch polling — the seed planned
/// unconditionally on each of them. Results go to stdout and
/// BENCH_realloc.json (numbers recorded in EXPERIMENTS.md).

#include <chrono>
#include <fstream>
#include <iostream>

#include "rispp/bench/meta_block.hpp"
#include "rispp/h264/phases.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/table.hpp"

namespace {

struct Run {
  std::uint64_t total_cycles = 0;
  std::uint64_t rotations = 0;
  std::uint64_t kernel_entries = 0;  ///< "reallocations" counter
  std::uint64_t plans = 0;           ///< "selector_plans" counter
  double wall_ms = 0;
};

Run run_mode(rispp::sim::Driving driving) {
  const auto lib = rispp::isa::SiLibrary::h264_frame();
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 10;
  cfg.rt.record_events = false;
  cfg.quantum = 2000;  // forecast/poll pressure: many switches per phase
  cfg.driving = driving;

  rispp::sim::Simulator sim(borrow(lib), cfg);
  rispp::h264::PhaseTraceParams p;
  p.frames = 4;
  p.macroblocks_per_frame = 99;
  sim.add_task({"enc", rispp::h264::make_phase_trace(
                           lib, p, rispp::h264::fig1_phases())});
  sim.add_task({"dec", rispp::h264::make_phase_trace(
                           lib, p, rispp::h264::decoder_phases())});

  const auto t0 = std::chrono::steady_clock::now();
  const auto r = sim.run();
  const auto t1 = std::chrono::steady_clock::now();

  Run out;
  out.total_cycles = r.total_cycles;
  out.rotations = r.rotations;
  out.kernel_entries = sim.manager().counters().get("reallocations");
  out.plans = sim.manager().counters().get("selector_plans");
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  using rispp::util::TextTable;

  const char* out_path = "BENCH_realloc.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = argv[i] + 6;
  }

  const auto polled = run_mode(rispp::sim::Driving::PollEverySwitch);
  const auto wakeup = run_mode(rispp::sim::Driving::Wakeups);

  TextTable t{"metric", "every-switch polling", "rotation wakeups"};
  t.set_title("Reallocation hot path (enc+dec co-run, quantum 2000)");
  auto g = [](std::uint64_t v) {
    return TextTable::grouped(static_cast<long long>(v));
  };
  t.add_row({"simulated cycles", g(polled.total_cycles),
             g(wakeup.total_cycles)});
  t.add_row({"rotations", g(polled.rotations), g(wakeup.rotations)});
  t.add_row({"kernel entries", g(polled.kernel_entries),
             g(wakeup.kernel_entries)});
  t.add_row({"selector plan() runs", g(polled.plans), g(wakeup.plans)});
  t.add_row({"wall time [ms]", TextTable::num(polled.wall_ms, 2),
             TextTable::num(wakeup.wall_ms, 2)});
  std::cout << t.str();
  std::cout << "(seed planned on every kernel entry: "
            << g(polled.kernel_entries) << " plans for this scenario; the "
            << "plan cache needs " << g(polled.plans)
            << " even under the same polling, wakeups cut entries to "
            << g(wakeup.kernel_entries) << ")\n";

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"meta\": " << rispp::bench::meta_block("realloc_hot_path")
       << ",\n"
       << "  \"scenario\": \"h264_enc_dec_corun\",\n"
       << "  \"atom_containers\": 10,\n"
       << "  \"quantum\": 2000,\n"
       << "  \"simulated_cycles\": " << wakeup.total_cycles << ",\n"
       << "  \"rotations\": " << wakeup.rotations << ",\n"
       << "  \"seed_baseline_plan_invocations\": " << polled.kernel_entries
       << ",\n"
       << "  \"polled_mode\": {\"kernel_entries\": " << polled.kernel_entries
       << ", \"selector_plan_invocations\": " << polled.plans
       << ", \"wall_time_ms\": " << polled.wall_ms << "},\n"
       << "  \"wakeup_mode\": {\"kernel_entries\": " << wakeup.kernel_entries
       << ", \"selector_plan_invocations\": " << wakeup.plans
       << ", \"wall_time_ms\": " << wakeup.wall_ms << "}\n"
       << "}\n";
  std::cout << "Wrote " << out_path << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
