/// Run-report serialization: the JSON substrate (ordered objects, token-
/// preserving numbers), byte-stable write→read→write round trips, the
/// checked-in fig06 report golden, and the tolerance-aware diff used by
/// `rispp_report diff` and the CI regression gate.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "rispp/obs/csv_trace.hpp"
#include "rispp/obs/json.hpp"
#include "rispp/obs/profiler.hpp"
#include "rispp/obs/report.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::obs;
using rispp::util::PreconditionError;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string golden_path() {
  return std::string(RISPP_TEST_DATA_DIR) + "/fig06_report_golden.json";
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  auto v = json::Value::object();
  v.add("zebra", json::Value::number(std::uint64_t{1}));
  v.add("alpha", json::Value::number(std::uint64_t{2}));
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2}");
  EXPECT_EQ(v.at("alpha").as_u64(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), PreconditionError);
}

TEST(Json, NumbersKeepTheirSourceToken) {
  // "0.10" must not reformat to "0.1" on a parse → dump round trip.
  const auto v = json::parse("[0.10, 1e3, -7]");
  EXPECT_EQ(v.dump(), "[0.10,1e3,-7]");
  EXPECT_DOUBLE_EQ(v.items()[0].as_double(), 0.1);
  EXPECT_DOUBLE_EQ(v.items()[1].as_double(), 1000.0);
  EXPECT_EQ(v.items()[2].as_i64(), -7);
}

TEST(Json, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\" 1}", "nul", "1.", "2e", "\"\\q\"",
        "[1] trailing", "{\"a\":1,}"}) {
    EXPECT_THROW(json::parse(bad), PreconditionError) << bad;
  }
}

TEST(Json, StringEscapesRoundTrip) {
  const auto v = json::parse(R"("line\n\ttab \"q\" \\ \u0041")");
  EXPECT_EQ(v.as_string(), "line\n\ttab \"q\" \\ A");
  EXPECT_EQ(json::escape("a\nb\"c\\d\x01"),
            "a\\nb\\\"c\\\\d\\u0001");
}

/// The exact bench scenario (bench/fig06_runtime_scenario.cpp, labels and
/// all) with a live Profiler sink — the stream behind the checked-in golden.
RunReport run_fig06_report() {
  using namespace rispp::sim;
  const auto lib = rispp::isa::SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");
  SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  Profiler profiler(make_trace_meta(lib, cfg, {"A", "B"}));
  cfg.rt.sink = &profiler;
  Simulator sim(borrow(lib), cfg);

  Trace a;
  a.push_back(TraceOp::label("T0: steady state — A forecasts SATD_4x4"));
  a.push_back(TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(TraceOp::compute(10000));
    a.push_back(TraceOp::si(satd, 50));
  }
  Trace b;
  b.push_back(TraceOp::forecast(si0, 50));
  b.push_back(TraceOp::compute(700000));
  b.push_back(TraceOp::si(si0, 20));
  b.push_back(TraceOp::label("T1: B forecasts the more important SI1"));
  b.push_back(TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(TraceOp::compute(40000));
    b.push_back(TraceOp::si(si1, 100));
  }
  b.push_back(TraceOp::label("T2: forecast states SI1 no longer needed"));
  b.push_back(TraceOp::release(si1));
  b.push_back(TraceOp::label("T3: B's SI0 reuses containers now owned by A"));
  b.push_back(TraceOp::si(si0, 20));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
  (void)sim.run();
  return profiler.finalize("fig06");
}

TEST(ReportGolden, Fig06MatchesCheckedInReportByteForByte) {
  const auto golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(write_report(run_fig06_report()), golden)
      << "fig06 run report diverged from tests/data/fig06_report_golden.json"
      << " — regenerate with bench/fig06_runtime_scenario --report-out= if"
      << " the change is intentional";
}

TEST(ReportGolden, CsvReplayIsTheSameCodePathAsLiveStreaming) {
  // tools/trace_summary --json replays a CSV trace through exactly this
  // call; the replayed fig06 stream must serialize to the same bytes as the
  // live profiler run (the golden), names learned from the CSV columns.
  std::ifstream in(std::string(RISPP_TEST_DATA_DIR) + "/fig06_golden.csv");
  ASSERT_TRUE(in.good());
  TraceMeta learned;
  const auto events = read_csv_trace(in, &learned);
  const auto report = Profiler::profile(events, learned, "fig06");
  EXPECT_EQ(write_report(report), read_file(golden_path()));
}

TEST(ReportRoundTrip, WriteReadWriteIsByteStable) {
  const auto text = read_file(golden_path());
  const auto report = read_report(text);
  EXPECT_EQ(report.version, kReportVersion);
  EXPECT_EQ(report.scenario, "fig06");
  EXPECT_EQ(write_report(report), text);
}

TEST(ReportRoundTrip, RejectsForeignSchemaAndVersion) {
  EXPECT_THROW(read_report("not json"), PreconditionError);
  EXPECT_THROW(read_report("{}"), PreconditionError);
  EXPECT_THROW(
      read_report(R"({"schema":"other.format","version":1})"),
      PreconditionError);
  EXPECT_THROW(
      read_report(R"({"schema":"rispp.run_report","version":999})"),
      PreconditionError);
  EXPECT_THROW(read_report_file("/nonexistent/report.json"),
               PreconditionError);
}

TEST(ReportDiff, IdenticalReportsHaveNoDivergences) {
  const auto golden = json::parse(read_file(golden_path()));
  EXPECT_TRUE(diff_reports(golden, golden).empty());
}

TEST(ReportDiff, PerturbedCounterIsReportedWithItsPath) {
  const auto golden = json::parse(read_file(golden_path()));
  auto text = read_file(golden_path());
  const std::string needle = "\"rotations\": 8";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"rotations\": 9");
  const auto entries = diff_reports(golden, json::parse(text));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "counts.rotations");
  EXPECT_EQ(entries[0].golden, "8");
  EXPECT_EQ(entries[0].candidate, "9");
  EXPECT_NEAR(entries[0].rel, 1.0 / 9.0, 1e-12);

  // A wide enough tolerance on that path swallows the drift; a tolerance
  // for an unrelated path does not.
  EXPECT_TRUE(diff_reports(golden, json::parse(text),
                           {{"counts.rotations", 0.2}})
                  .empty());
  EXPECT_FALSE(diff_reports(golden, json::parse(text),
                            {{"port.utilization", 0.2}})
                   .empty());
}

TEST(ReportDiff, LongestMatchingTolerancePatternWins) {
  auto golden = json::Value::object();
  golden.add("port", json::Value::object())
      .add("utilization", json::Value::number(std::string("0.50")));
  auto candidate = json::Value::object();
  candidate.add("port", json::Value::object())
      .add("utilization", json::Value::number(std::string("0.55")));
  // The generic rule would fail the 10% drift; the more specific (longer)
  // rule allows it — order in the list must not matter.
  EXPECT_TRUE(diff_reports(golden, candidate,
                           {{"utilization", 0.0},
                            {"port.utilization", 0.2}})
                  .empty());
  EXPECT_FALSE(diff_reports(golden, candidate,
                            {{"port.utilization", 0.01},
                             {"utilization", 0.5}})
                   .empty());
}

TEST(ReportDiff, StructuralDivergenceRendersAbsent) {
  const auto golden = json::parse(R"({"a":[1,2],"b":1})");
  const auto shorter = json::parse(R"({"a":[1],"b":1})");
  auto entries = diff_reports(golden, shorter);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "a[1]");
  EXPECT_EQ(entries[0].candidate, "<absent>");

  const auto missing_key = json::parse(R"({"a":[1,2]})");
  entries = diff_reports(golden, missing_key);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, "b");
  EXPECT_EQ(entries[0].candidate, "<absent>");

  // Kind mismatch is structural regardless of tolerance.
  const auto wrong_kind = json::parse(R"({"a":[1,"2"],"b":1})");
  EXPECT_FALSE(diff_reports(golden, wrong_kind, {{"a", 1.0}}).empty());
}

TEST(ReportDiff, NumberTokensCompareByValueNotText) {
  // "1e3" and "1000" are the same number; the fast path is token equality
  // but the fallback must be numeric.
  const auto a = json::parse(R"({"x":1e3})");
  const auto b = json::parse(R"({"x":1000})");
  EXPECT_TRUE(diff_reports(a, b).empty());
}

}  // namespace
