#include <gtest/gtest.h>

#include "rispp/isa/si_library.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::isa;
using rispp::atom::Molecule;
using rispp::util::PreconditionError;

class H264Library : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
  const AtomCatalog& cat_ = lib_.catalog();
};

TEST_F(H264Library, ContainsTheFourCaseStudySis) {
  EXPECT_EQ(lib_.size(), 4u);
  EXPECT_TRUE(lib_.contains("HT_2x2"));
  EXPECT_TRUE(lib_.contains("HT_4x4"));
  EXPECT_TRUE(lib_.contains("DCT_4x4"));
  EXPECT_TRUE(lib_.contains("SATD_4x4"));
  EXPECT_THROW(lib_.find("SAD_4x4"), PreconditionError);
}

TEST_F(H264Library, Table2MoleculeCounts) {
  // Column-group sizes of Table 2: 1 + 6 + 8 + 15 = 30 molecules.
  EXPECT_EQ(lib_.find("HT_2x2").options().size(), 1u);
  EXPECT_EQ(lib_.find("HT_4x4").options().size(), 6u);
  EXPECT_EQ(lib_.find("DCT_4x4").options().size(), 8u);
  EXPECT_EQ(lib_.find("SATD_4x4").options().size(), 15u);
}

TEST_F(H264Library, Table2CycleValues) {
  auto cycles = [](const SpecialInstruction& si) {
    std::vector<std::uint32_t> v;
    for (const auto& o : si.options()) v.push_back(o.cycles);
    return v;
  };
  EXPECT_EQ(cycles(lib_.find("HT_2x2")), (std::vector<std::uint32_t>{5}));
  EXPECT_EQ(cycles(lib_.find("HT_4x4")),
            (std::vector<std::uint32_t>{22, 17, 17, 12, 11, 8}));
  EXPECT_EQ(cycles(lib_.find("DCT_4x4")),
            (std::vector<std::uint32_t>{24, 23, 19, 15, 18, 12, 12, 9}));
  EXPECT_EQ(cycles(lib_.find("SATD_4x4")),
            (std::vector<std::uint32_t>{24, 22, 22, 20, 18, 18, 17, 15, 14, 15,
                                        14, 14, 13, 13, 12}));
}

TEST_F(H264Library, SatdMinimalMoleculeIsOneAtomOfEachComputeKind) {
  // Paper §6: "The minimum requirement for this SI is 4 Atoms, i.e. 1 Atom
  // of each kind" (QuadSub, Pack, Transform, SATD).
  const auto& satd = lib_.find("SATD_4x4");
  const auto& min = satd.minimal(cat_);
  EXPECT_EQ(min.cycles, 24u);
  EXPECT_EQ(cat_.rotatable_determinant(min.atoms), 4u);
  EXPECT_EQ(min.atoms[cat_.index_of("QuadSub")], 1u);
  EXPECT_EQ(min.atoms[cat_.index_of("Pack")], 1u);
  EXPECT_EQ(min.atoms[cat_.index_of("Transform")], 1u);
  EXPECT_EQ(min.atoms[cat_.index_of("SATD")], 1u);
}

TEST_F(H264Library, Ht2x2ConstitutesOnlyOneComputeAtom) {
  const auto& min = lib_.find("HT_2x2").minimal(cat_);
  EXPECT_EQ(cat_.rotatable_determinant(min.atoms), 1u);
  EXPECT_EQ(min.atoms[cat_.index_of("Transform")], 1u);
}

TEST_F(H264Library, SiMoreThan22TimesFasterThanSoftware) {
  // Paper §6: "the SIs with min. Atom requirements are more than 22 times
  // faster than the optimized software implementation."
  const auto& satd = lib_.find("SATD_4x4");
  const double min_speedup = satd.speedup(satd.minimal(cat_));
  EXPECT_GT(min_speedup, 22.0);
  EXPECT_GT(satd.max_speedup(), min_speedup);
}

TEST_F(H264Library, FastestSupportedPicksBestFittingMolecule) {
  const auto& dct = lib_.find("DCT_4x4");
  // QuadSub 2, Pack 1, Transform 2 loaded → the 15-cycle molecule fits.
  Molecule loaded(cat_.size());
  loaded.set(cat_.index_of("QuadSub"), 2);
  loaded.set(cat_.index_of("Pack"), 1);
  loaded.set(cat_.index_of("Transform"), 2);
  const auto* opt = dct.fastest_supported(loaded, cat_);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->cycles, 15u);
  EXPECT_EQ(dct.cycles_with(loaded, cat_), 15u);
}

TEST_F(H264Library, NoAtomsMeansSoftwareExecution) {
  const auto& satd = lib_.find("SATD_4x4");
  const Molecule empty(cat_.size());
  EXPECT_EQ(satd.fastest_supported(empty, cat_), nullptr);
  EXPECT_EQ(satd.cycles_with(empty, cat_), satd.software_cycles());
  EXPECT_EQ(satd.software_cycles(), 544u);
}

TEST_F(H264Library, BestWithBudgetMonotone) {
  const auto& satd = lib_.find("SATD_4x4");
  std::uint32_t prev = satd.software_cycles();
  for (std::uint64_t budget = 0; budget <= 20; ++budget) {
    const auto best = satd.best_with_budget(budget, cat_);
    const std::uint32_t c = best ? best->cycles : satd.software_cycles();
    EXPECT_LE(c, prev) << "budget " << budget;
    prev = c;
  }
  // Below the minimal molecule's 4 compute atoms: no hardware option.
  EXPECT_FALSE(satd.best_with_budget(3, cat_).has_value());
  EXPECT_TRUE(satd.best_with_budget(4, cat_).has_value());
}

TEST_F(H264Library, RepIsCeilAverageOverHardwareMolecules) {
  const auto& ht2 = lib_.find("HT_2x2");
  // Single molecule → Rep = that molecule.
  EXPECT_EQ(ht2.rep(cat_), ht2.options().front().atoms);

  const auto& satd = lib_.find("SATD_4x4");
  const auto rep = satd.rep(cat_);
  // Every component must lie between the min and max over the molecules.
  for (std::size_t i = 0; i < cat_.size(); ++i) {
    rispp::atom::Count lo = ~0u, hi = 0;
    for (const auto& o : satd.options()) {
      lo = std::min(lo, o.atoms[i]);
      hi = std::max(hi, o.atoms[i]);
    }
    EXPECT_GE(rep[i], lo);
    EXPECT_LE(rep[i], hi);
  }
}

TEST_F(H264Library, WithSadExtension) {
  const auto lib = SiLibrary::h264_with_sad();
  EXPECT_EQ(lib.size(), 5u);
  const auto& sad = lib.find("SAD_4x4");
  // The sketched SAD SI combines QuadSub and SATD Atoms, no Transform/Pack.
  for (const auto& o : sad.options()) {
    EXPECT_EQ(o.atoms[lib.catalog().index_of("Transform")], 0u);
    EXPECT_EQ(o.atoms[lib.catalog().index_of("Pack")], 0u);
    EXPECT_GT(o.atoms[lib.catalog().index_of("QuadSub")], 0u);
    EXPECT_GT(o.atoms[lib.catalog().index_of("SATD")], 0u);
  }
}

TEST(SpecialInstructionValidation, RejectsBadConstruction) {
  EXPECT_THROW(SpecialInstruction("", 10, {{Molecule{1}, 5}}),
               PreconditionError);
  EXPECT_THROW(SpecialInstruction("X", 0, {{Molecule{1}, 5}}),
               PreconditionError);
  EXPECT_THROW(SpecialInstruction("X", 10, {}), PreconditionError);
  EXPECT_THROW(SpecialInstruction("X", 10, {{Molecule{0}, 5}}),
               PreconditionError);  // zero molecule
  EXPECT_THROW(SpecialInstruction("X", 10, {{Molecule{1}, 0}}),
               PreconditionError);  // zero latency
}

TEST(SiLibraryValidation, RejectsDuplicatesAndDimensionMismatch) {
  auto cat = AtomCatalog::h264();
  SpecialInstruction si("X", 100, {{Molecule{0, 1, 0, 0, 0, 0, 0}, 5}});
  EXPECT_THROW(SiLibrary(cat, {si, si}), PreconditionError);
  SpecialInstruction bad_dim("Y", 100, {{Molecule{1, 1}, 5}});
  EXPECT_THROW(SiLibrary(cat, {bad_dim}), PreconditionError);
}

}  // namespace
