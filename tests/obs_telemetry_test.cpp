/// Host-telemetry unit tests: ScopedSpan binding semantics, the flight
/// recorder's bounded rings and dump schema ("rispp.flight/1"), the
/// signal-safe dump path, and the heartbeat JSONL records
/// ("rispp.telemetry/1"). The engine-level contracts (byte identity,
/// per-worker counters, dump-on-evaluator-throw) live in
/// exp_telemetry_test.cpp.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "rispp/obs/flight_recorder.hpp"
#include "rispp/obs/json.hpp"
#include "rispp/obs/telemetry.hpp"

namespace {

using namespace rispp::obs;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ScopedSpan, IsANoOpWhenNoTelemetryIsBound) {
  ASSERT_EQ(Telemetry::bound(), nullptr);
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner", "detail");
  }
  EXPECT_EQ(Telemetry::bound(), nullptr);
}

TEST(ScopedSpan, RecordsNestedSpansAgainstTheBoundTelemetry) {
  Telemetry tel(Telemetry::Config{});
  {
    Telemetry::Binding bind(tel, 0);
    ASSERT_EQ(Telemetry::bound(), &tel);
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner", "#42");
    }
  }
  EXPECT_EQ(Telemetry::bound(), nullptr);

  const auto spans = tel.spans();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].detail, "#42");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);
  EXPECT_EQ(spans[0].thread, 0u);
}

TEST(ScopedSpan, BindingNestsAndRestoresThePreviousOwner) {
  Telemetry a(Telemetry::Config{});
  Telemetry b(Telemetry::Config{});
  Telemetry::Binding bind_a(a, 0);
  {
    Telemetry::Binding bind_b(b, 3);
    EXPECT_EQ(Telemetry::bound(), &b);
    ScopedSpan span("in_b");
  }
  EXPECT_EQ(Telemetry::bound(), &a);
  ASSERT_EQ(b.spans().size(), 1u);
  EXPECT_EQ(b.spans()[0].thread, 3u);
  EXPECT_TRUE(a.spans().empty());
}

TEST(ScopedSpan, KeepSpansOffStillFeedsTheFlightRing) {
  Telemetry::Config cfg;
  cfg.keep_spans = false;
  Telemetry tel(cfg);
  {
    Telemetry::Binding bind(tel, 0);
    ScopedSpan span("transient");
  }
  EXPECT_TRUE(tel.spans().empty());
  EXPECT_EQ(tel.flight().ring(0).pushed(), 2u);  // enter + exit
}

TEST(FlightRing, BoundsRetentionAndCountsDrops) {
  FlightRing ring;
  const std::size_t n = FlightRing::kCapacity + 37;
  for (std::size_t i = 0; i < n; ++i)
    ring.push(i, FlightEvent::Kind::Note, "evt", std::to_string(i));
  EXPECT_EQ(ring.pushed(), n);
  EXPECT_EQ(ring.retained(), FlightRing::kCapacity);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), FlightRing::kCapacity);
  // Oldest first, and the oldest surviving event is push #37.
  EXPECT_EQ(events.front().t_ns, 37u);
  EXPECT_EQ(events.back().t_ns, n - 1);
}

TEST(FlightRing, TruncatesOversizedDetail) {
  FlightRing ring;
  ring.push(1, FlightEvent::Kind::Note, "evt", std::string(200, 'x'));
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string detail = events[0].detail;
  EXPECT_EQ(detail, std::string(sizeof(FlightEvent{}.detail) - 1, 'x'));
}

TEST(FlightRecorder, DumpIsValidSortedJson) {
  FlightRecorder rec(2);
  rec.note(1, 30, "late", "");
  rec.note(0, 10, "early", "quote \" and\nnewline");
  rec.note(0, 20, "middle", "");
  std::ostringstream out;
  rec.dump(out, "unit test");

  const auto doc = json::parse(out.str());
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.flight/1");
  EXPECT_EQ(doc.at("reason").as_string(), "unit test");
  EXPECT_EQ(doc.at("threads").as_u64(), 2u);
  EXPECT_EQ(doc.at("dropped_events").as_u64(), 0u);
  const auto& events = doc.at("events").items();
  ASSERT_EQ(events.size(), 3u);
  // Merged across rings, sorted by timestamp.
  EXPECT_EQ(events[0].at("name").as_string(), "early");
  EXPECT_EQ(events[0].at("detail").as_string(), "quote \" and\nnewline");
  EXPECT_EQ(events[1].at("name").as_string(), "middle");
  EXPECT_EQ(events[2].at("name").as_string(), "late");
  EXPECT_EQ(events[2].at("thread").as_u64(), 1u);
}

TEST(FlightRecorder, DumpToFileReportsFailureWithoutThrowing) {
  FlightRecorder rec(1);
  rec.note(0, 1, "evt", "");
  const auto path = temp_path("flight_ok.json");
  EXPECT_TRUE(rec.dump_to_file(path, "ok"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json::parse(buf.str()).at("reason").as_string(), "ok");
  EXPECT_FALSE(rec.dump_to_file("/nonexistent-dir/x/y.json", "bad"));
}

TEST(FlightRecorder, SignalSafeDumpMatchesTheSchema) {
  FlightRecorder rec(2);
  rec.note(0, 5, "alpha", "a \"quoted\" detail");
  rec.note(1, 7, "beta", "");
  const auto path = temp_path("flight_sigsafe.json");
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(rec.dump_signal_safe(fd, SIGSEGV));
  ::close(fd);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.flight/1");
  EXPECT_EQ(doc.at("reason").as_string(), "signal 11");
  ASSERT_EQ(doc.at("events").items().size(), 2u);
  EXPECT_EQ(doc.at("events").items()[0].at("name").as_string(), "alpha");
}

TEST(FlightRecorderDeathTest, CrashHandlerDumpsAndPreservesTheSignal) {
  const auto path = temp_path("flight_crash.json");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        FlightRecorder rec(1);
        rec.note(0, 1, "before_crash", "still here");
        rec.install_crash_handler(path);
        ::raise(SIGABRT);
      },
      testing::KilledBySignal(SIGABRT), "");
  // The child's handler wrote the dump before re-raising.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler left no dump at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.flight/1");
  EXPECT_EQ(doc.at("reason").as_string(), "signal 6");
  EXPECT_EQ(doc.at("events").items()[0].at("name").as_string(),
            "before_crash");
}

TEST(Telemetry, HeartbeatJsonCarriesTheDocumentedFields) {
  Telemetry tel(Telemetry::Config{});
  Telemetry::Binding bind(tel, 0);
  tel.begin_run(10, 2, 8);
  const auto doc = json::parse(tel.heartbeat_json(4));
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.telemetry/1");
  EXPECT_EQ(doc.at("kind").as_string(), "heartbeat");
  EXPECT_EQ(doc.at("done").as_u64(), 4u);
  EXPECT_EQ(doc.at("total").as_u64(), 10u);
  EXPECT_NE(doc.find("elapsed_ms"), nullptr);
  EXPECT_NE(doc.find("rate_pps"), nullptr);
  EXPECT_NE(doc.find("eta_ms"), nullptr);
  EXPECT_NE(doc.find("rss_kib"), nullptr);
  // No workers attached: the array is present and empty.
  EXPECT_TRUE(doc.at("workers").items().empty());
}

TEST(Telemetry, HeartbeatCadenceAndLifecycleRecords) {
  std::ostringstream jsonl;
  Telemetry::Config cfg;
  cfg.heartbeat_every = 2;
  cfg.heartbeat_out = &jsonl;
  Telemetry tel(cfg);
  Telemetry::Binding bind(tel, 0);
  tel.begin_run(5, 1, 8);
  for (std::size_t done = 1; done <= 5; ++done) tel.on_progress(done);
  tel.end_run(5, 1);

  std::vector<rispp::obs::json::Value> records;
  std::istringstream lines(jsonl.str());
  std::string line;
  while (std::getline(lines, line)) records.push_back(json::parse(line));

  // start + heartbeats at done=2,4,5 + finish.
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().at("kind").as_string(), "start");
  EXPECT_EQ(records.front().at("total").as_u64(), 5u);
  EXPECT_EQ(records[1].at("done").as_u64(), 2u);
  EXPECT_EQ(records[2].at("done").as_u64(), 4u);
  EXPECT_EQ(records[3].at("done").as_u64(), 5u);
  EXPECT_EQ(records.back().at("kind").as_string(), "finish");
  EXPECT_EQ(records.back().at("done").as_u64(), 5u);
  EXPECT_EQ(tel.heartbeats_emitted(), 3u);
}

TEST(Telemetry, RecordFailureDumpsToTheConfiguredPath) {
  Telemetry::Config cfg;
  cfg.flight_path = temp_path("flight_failure.json");
  Telemetry tel(cfg);
  Telemetry::Binding bind(tel, 0);
  tel.begin_run(3, 1, 8);
  const auto written = tel.record_failure("evaluator exception", "boom #2");
  EXPECT_EQ(written, cfg.flight_path);

  std::ifstream in(written);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.flight/1");
  EXPECT_EQ(doc.at("reason").as_string(), "evaluator exception: boom #2");
}

TEST(Telemetry, RecordFailureWithoutAPathWritesNothing) {
  Telemetry tel(Telemetry::Config{});
  tel.begin_run(1, 1, 8);
  EXPECT_EQ(tel.record_failure("sink exception", "disk full"), "");
}

}  // namespace
