/// Text serialization of SI libraries: round-trips, whitespace/comment
/// handling, and precise error reporting with line numbers.

#include <gtest/gtest.h>

#include "rispp/isa/io.hpp"

namespace {

using namespace rispp::isa;

const char* kMinimal = R"(
# a two-atom, one-SI library
catalog
  atom A slices=100 luts=200 bitstream=50000 rotatable
  atom Ld slices=50 luts=100 bitstream=40000 static
end

si DOIT software=100
  molecule cycles=10 A=1 Ld=1
  molecule cycles=6 A=2 Ld=1
end
)";

TEST(IsaIo, ParsesMinimalLibrary) {
  const auto lib = parse_si_library(kMinimal);
  EXPECT_EQ(lib.catalog().size(), 2u);
  EXPECT_TRUE(lib.catalog().at(0).rotatable);
  EXPECT_FALSE(lib.catalog().at(1).rotatable);
  EXPECT_EQ(lib.catalog().at(0).hardware.slices, 100u);
  EXPECT_EQ(lib.catalog().at(1).hardware.bitstream_bytes, 40000u);
  ASSERT_EQ(lib.size(), 1u);
  const auto& si = lib.find("DOIT");
  EXPECT_EQ(si.software_cycles(), 100u);
  ASSERT_EQ(si.options().size(), 2u);
  EXPECT_EQ(si.options()[0].cycles, 10u);
  EXPECT_EQ(si.options()[1].atoms[0], 2u);
  EXPECT_EQ(si.options()[1].atoms[1], 1u);
}

TEST(IsaIo, RoundTripsTheH264Library) {
  const auto original = SiLibrary::h264();
  const auto text = write_si_library(original);
  const auto parsed = parse_si_library(text);

  ASSERT_EQ(parsed.catalog().size(), original.catalog().size());
  for (std::size_t a = 0; a < original.catalog().size(); ++a) {
    EXPECT_EQ(parsed.catalog().at(a).name, original.catalog().at(a).name);
    EXPECT_EQ(parsed.catalog().at(a).rotatable,
              original.catalog().at(a).rotatable);
    EXPECT_EQ(parsed.catalog().at(a).hardware.bitstream_bytes,
              original.catalog().at(a).hardware.bitstream_bytes);
  }
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t s = 0; s < original.size(); ++s) {
    const auto& po = parsed.at(s);
    const auto& oo = original.at(s);
    EXPECT_EQ(po.name(), oo.name());
    EXPECT_EQ(po.software_cycles(), oo.software_cycles());
    ASSERT_EQ(po.options().size(), oo.options().size());
    for (std::size_t m = 0; m < oo.options().size(); ++m) {
      EXPECT_EQ(po.options()[m].cycles, oo.options()[m].cycles);
      EXPECT_EQ(po.options()[m].atoms, oo.options()[m].atoms);
    }
  }
}

TEST(IsaIo, RoundTripsTheFrameLibrary) {
  const auto original = SiLibrary::h264_frame();
  const auto parsed = parse_si_library(write_si_library(original));
  EXPECT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.catalog().size(), original.catalog().size());
  // Second write must be byte-identical (canonical form).
  EXPECT_EQ(write_si_library(parsed), write_si_library(original));
}

TEST(IsaIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header\n\ncatalog\n  atom X slices=1 luts=1 bitstream=1 # trailing\n"
      "end\nsi S software=9\n  molecule cycles=3 X=1\nend\n";
  const auto lib = parse_si_library(text);
  EXPECT_EQ(lib.find("S").options().front().cycles, 3u);
  EXPECT_TRUE(lib.catalog().at(0).rotatable);  // default
}

TEST(IsaIo, ErrorsCarryLineNumbers) {
  auto expect_error_at = [](const std::string& text, std::size_t line) {
    try {
      parse_si_library(text);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  // Unknown atom in a molecule (line 5).
  expect_error_at(
      "catalog\n  atom A slices=1 luts=1 bitstream=1\nend\n"
      "si S software=9\n  molecule cycles=3 B=1\nend\n",
      5);
  // Malformed count (line 2).
  expect_error_at("catalog\n  atom A slices=abc\nend\n", 2);
  // Missing software attribute (line 4).
  expect_error_at(
      "catalog\n  atom A slices=1 luts=1 bitstream=1\nend\nsi S\n"
      "  molecule cycles=3 A=1\nend\n",
      4);
  // Molecule without cycles (line 5).
  expect_error_at(
      "catalog\n  atom A slices=1 luts=1 bitstream=1\nend\n"
      "si S software=9\n  molecule A=1\nend\n",
      5);
}

TEST(IsaIo, StructuralErrors) {
  EXPECT_THROW(parse_si_library(""), ParseError);
  EXPECT_THROW(parse_si_library("si S software=1\nend\n"), ParseError);
  EXPECT_THROW(parse_si_library("catalog\nend\n"), ParseError);  // empty
  EXPECT_THROW(
      parse_si_library("catalog\n  atom A slices=1 luts=1 bitstream=1\nend\n"),
      ParseError);  // no SIs
  // Unclosed sections.
  EXPECT_THROW(parse_si_library("catalog\n  atom A slices=1\n"), ParseError);
  // Library-level validation surfaces as ParseError (duplicate SI name).
  EXPECT_THROW(parse_si_library(
                   "catalog\n  atom A slices=1 luts=1 bitstream=1\nend\n"
                   "si S software=9\n  molecule cycles=3 A=1\nend\n"
                   "si S software=9\n  molecule cycles=3 A=1\nend\n"),
               ParseError);
}

TEST(IsaIo, ParsedLibraryIsFullyFunctional) {
  // The parsed library drives the same machinery as the built-in one.
  const auto lib = parse_si_library(write_si_library(SiLibrary::h264()));
  const auto& satd = lib.find("SATD_4x4");
  const auto front = satd.pareto_front(lib.catalog());
  EXPECT_EQ(front.front().rotatable_atoms, 4u);
  EXPECT_EQ(front.front().cycles, 24u);
  EXPECT_GT(satd.max_speedup(), 40.0);
}

}  // namespace
