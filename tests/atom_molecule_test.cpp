#include <gtest/gtest.h>

#include "rispp/atom/molecule.hpp"
#include "rispp/util/error.hpp"

namespace {

using rispp::atom::Molecule;
using rispp::util::PreconditionError;

TEST(Molecule, ZeroConstruction) {
  const Molecule z(4);
  EXPECT_EQ(z.dimension(), 4u);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.determinant(), 0u);
}

TEST(Molecule, InitializerList) {
  const Molecule m{1, 0, 2, 1};
  EXPECT_EQ(m.dimension(), 4u);
  EXPECT_EQ(m[0], 1u);
  EXPECT_EQ(m[2], 2u);
  EXPECT_EQ(m.determinant(), 4u);
  EXPECT_FALSE(m.is_zero());
}

TEST(Molecule, UniteIsElementwiseMax) {
  const Molecule a{1, 3, 0};
  const Molecule b{2, 1, 0};
  EXPECT_EQ(a.unite(b), (Molecule{2, 3, 0}));
}

TEST(Molecule, IntersectIsElementwiseMin) {
  const Molecule a{1, 3, 2};
  const Molecule b{2, 1, 2};
  EXPECT_EQ(a.intersect(b), (Molecule{1, 1, 2}));
}

TEST(Molecule, PartialOrder) {
  const Molecule a{1, 1};
  const Molecule b{2, 1};
  const Molecule c{0, 5};
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  // a and c are incomparable — the order is only partial.
  EXPECT_FALSE(a.leq(c));
  EXPECT_FALSE(c.leq(a));
}

TEST(Molecule, ResidualIsMissingAtoms) {
  // Paper: p = o ⊖ m with pᵢ = max(oᵢ − mᵢ, 0): what must still be loaded.
  const Molecule loaded{2, 0, 1};
  const Molecule wanted{1, 2, 3};
  EXPECT_EQ(loaded.residual_to(wanted), (Molecule{0, 2, 2}));
}

TEST(Molecule, ResidualOfSupportedIsZero) {
  const Molecule loaded{2, 2, 2};
  const Molecule wanted{1, 2, 0};
  EXPECT_TRUE(loaded.residual_to(wanted).is_zero());
}

TEST(Molecule, SaturatingSub) {
  const Molecule a{3, 1, 0};
  const Molecule b{1, 2, 0};
  EXPECT_EQ(a.saturating_sub(b), (Molecule{2, 0, 0}));
}

TEST(Molecule, Plus) {
  const Molecule a{1, 2};
  const Molecule b{3, 0};
  EXPECT_EQ(a.plus(b), (Molecule{4, 2}));
}

TEST(Molecule, DimensionMismatchThrows) {
  const Molecule a{1, 2};
  const Molecule b{1, 2, 3};
  EXPECT_THROW(a.unite(b), PreconditionError);
  EXPECT_THROW(a.intersect(b), PreconditionError);
  EXPECT_THROW(a.leq(b), PreconditionError);
  EXPECT_THROW(a.residual_to(b), PreconditionError);
  EXPECT_THROW(a.plus(b), PreconditionError);
}

TEST(Molecule, IndexOutOfRangeThrows) {
  const Molecule a{1, 2};
  EXPECT_THROW((void)a[2], PreconditionError);
}

TEST(Molecule, StringRendering) {
  const Molecule m{1, 0, 4};
  EXPECT_EQ(m.str(), "(1,0,4)");
}

TEST(Lattice, SupremumOfSet) {
  const std::vector<Molecule> ms{{1, 0, 2}, {0, 3, 1}, {2, 1, 0}};
  const auto sup = rispp::atom::supremum(ms, 3);
  EXPECT_EQ(sup, (Molecule{2, 3, 2}));
  for (const auto& m : ms) EXPECT_TRUE(m.leq(sup));
}

TEST(Lattice, SupremumOfEmptySetIsZero) {
  const auto sup = rispp::atom::supremum({}, 3);
  EXPECT_TRUE(sup.is_zero());
}

TEST(Lattice, InfimumOfSet) {
  const std::vector<Molecule> ms{{1, 2, 2}, {2, 3, 1}, {2, 2, 4}};
  const auto inf = rispp::atom::infimum(ms);
  EXPECT_EQ(inf, (Molecule{1, 2, 1}));
  for (const auto& m : ms) EXPECT_TRUE(inf.leq(m));
}

TEST(Lattice, InfimumOfEmptySetThrows) {
  EXPECT_THROW(rispp::atom::infimum({}), PreconditionError);
}

TEST(Lattice, RepresentativeIsCeilOfAverage) {
  // Rep(S)ᵢ = ⌈ mean over molecules of component i ⌉ (paper §3.2).
  const std::vector<Molecule> ms{{1, 0, 4}, {2, 0, 1}};
  const auto rep = rispp::atom::representative(ms, 3);
  EXPECT_EQ(rep, (Molecule{2, 0, 3}));  // ⌈1.5⌉, ⌈0⌉, ⌈2.5⌉
}

TEST(Lattice, RepresentativeOfSingleMoleculeIsItself) {
  const std::vector<Molecule> ms{{3, 1, 0}};
  EXPECT_EQ(rispp::atom::representative(ms, 3), ms.front());
}

TEST(Lattice, RepresentativeRequiresMolecules) {
  EXPECT_THROW(rispp::atom::representative({}, 3), PreconditionError);
}

}  // namespace
