/// Fig 13 ("RISPP SI Trade-off: Performance vs Resources"): each SI's
/// Molecule set induces a Pareto front of (#Atoms, cycles) points the
/// run-time system moves along. These tests pin the fronts of the Table-2
/// library and verify the front extraction on synthetic molecule sets.

#include <gtest/gtest.h>

#include "rispp/isa/si_library.hpp"

namespace {

using namespace rispp::isa;

class ParetoFronts : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
  const AtomCatalog& cat_ = lib_.catalog();
};

TEST_F(ParetoFronts, FrontIsStrictlyImproving) {
  for (const auto& si : lib_.sis()) {
    const auto front = si.pareto_front(cat_);
    ASSERT_FALSE(front.empty()) << si.name();
    for (std::size_t i = 1; i < front.size(); ++i) {
      EXPECT_GT(front[i].rotatable_atoms, front[i - 1].rotatable_atoms)
          << si.name();
      EXPECT_LT(front[i].cycles, front[i - 1].cycles) << si.name();
    }
  }
}

TEST_F(ParetoFronts, FrontDominatesEveryOption) {
  for (const auto& si : lib_.sis()) {
    const auto front = si.pareto_front(cat_);
    for (const auto& o : si.options()) {
      const auto atoms = cat_.rotatable_determinant(o.atoms);
      // Some front point must weakly dominate (≤ atoms, ≤ cycles).
      bool dominated = false;
      for (const auto& p : front)
        if (p.rotatable_atoms <= atoms && p.cycles <= o.cycles)
          dominated = true;
      EXPECT_TRUE(dominated) << si.name();
    }
  }
}

TEST_F(ParetoFronts, SatdFrontEndpoints) {
  const auto front = lib_.find("SATD_4x4").pareto_front(cat_);
  // Leftmost: the minimal molecule (4 compute atoms, 24 cycles).
  EXPECT_EQ(front.front().rotatable_atoms, 4u);
  EXPECT_EQ(front.front().cycles, 24u);
  // Rightmost: the fully spatial molecule (16 compute atoms, 12 cycles).
  EXPECT_EQ(front.back().rotatable_atoms, 16u);
  EXPECT_EQ(front.back().cycles, 12u);
}

TEST_F(ParetoFronts, DctDominatedMoleculeExcluded) {
  // Table 2's DCT_4x4 18-cycle molecule uses more atoms than the 15-cycle
  // one — it must not appear on the front.
  const auto front = lib_.find("DCT_4x4").pareto_front(cat_);
  for (const auto& p : front) EXPECT_NE(p.cycles, 18u);
}

TEST_F(ParetoFronts, Ht2x2IsASinglePoint) {
  const auto front = lib_.find("HT_2x2").pareto_front(cat_);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front.front().rotatable_atoms, 1u);
  EXPECT_EQ(front.front().cycles, 5u);
}

TEST(ParetoSynthetic, TiesOnAtomsKeepFastest) {
  AtomCatalog cat({{.name = "A", .hardware = {}, .rotatable = true},
                   {.name = "B", .hardware = {}, .rotatable = true}});
  SpecialInstruction si("S", 100,
                        {
                            {rispp::atom::Molecule{1, 0}, 50},
                            {rispp::atom::Molecule{0, 1}, 40},  // same det
                            {rispp::atom::Molecule{1, 1}, 30},
                        });
  const auto front = si.pareto_front(cat);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].rotatable_atoms, 1u);
  EXPECT_EQ(front[0].cycles, 40u);
  EXPECT_EQ(front[1].rotatable_atoms, 2u);
  EXPECT_EQ(front[1].cycles, 30u);
}

TEST(ParetoSynthetic, SlowerBiggerMoleculeDropped) {
  AtomCatalog cat({{.name = "A", .hardware = {}, .rotatable = true}});
  SpecialInstruction si("S", 100,
                        {
                            {rispp::atom::Molecule{1}, 40},
                            {rispp::atom::Molecule{2}, 60},  // dominated
                        });
  const auto front = si.pareto_front(cat);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].cycles, 40u);
}

}  // namespace
