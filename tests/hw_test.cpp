#include <gtest/gtest.h>

#include "rispp/hw/area_model.hpp"
#include "rispp/hw/atom_hw.hpp"
#include "rispp/hw/reconfig_port.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::hw;
using rispp::util::PreconditionError;

TEST(AtomHw, Table1Contents) {
  const auto atoms = table1_atoms();
  ASSERT_EQ(atoms.size(), 4u);
  const auto& transform = find_atom(atoms, "Transform");
  EXPECT_EQ(transform.slices, 517u);
  EXPECT_EQ(transform.luts, 1034u);
  EXPECT_EQ(transform.bitstream_bytes, 59353u);
  const auto& pack = find_atom(atoms, "Pack");
  // Pack's AC covers a BlockRAM row → clearly the biggest bitstream.
  for (const auto& a : atoms)
    if (a.name != "Pack") EXPECT_GT(pack.bitstream_bytes, a.bitstream_bytes);
}

TEST(AtomHw, Table1Utilization) {
  const auto atoms = table1_atoms();
  // Paper Table 1: 50.5 / 39.5 / 39.7 / 34.2 percent of a 1024-slice AC.
  // The paper's own slice counts and percentages disagree by up to ~0.3 pp
  // (407/1024 = 39.75 %, printed as 39.5 %), so the tolerance is 1 pp.
  EXPECT_NEAR(find_atom(atoms, "Transform").utilization(), 0.505, 0.01);
  EXPECT_NEAR(find_atom(atoms, "SATD").utilization(), 0.395, 0.01);
  EXPECT_NEAR(find_atom(atoms, "Pack").utilization(), 0.397, 0.01);
  EXPECT_NEAR(find_atom(atoms, "QuadSub").utilization(), 0.342, 0.01);
}

TEST(AtomHw, UnknownAtomThrows) {
  const auto atoms = table1_atoms();
  EXPECT_THROW(find_atom(atoms, "Bogus"), PreconditionError);
}

TEST(ReconfigPort, ReproducesTable1RotationTimes) {
  const ReconfigPort port;  // default = Table-1 back-solved rate
  const auto atoms = table1_atoms();
  // Paper Table 1 rotation times in µs, within rounding tolerance.
  EXPECT_NEAR(port.rotation_time_us(find_atom(atoms, "Transform").bitstream_bytes),
              857.63, 0.05);
  EXPECT_NEAR(port.rotation_time_us(find_atom(atoms, "SATD").bitstream_bytes),
              840.11, 0.05);
  EXPECT_NEAR(port.rotation_time_us(find_atom(atoms, "Pack").bitstream_bytes),
              949.53, 0.05);
  EXPECT_NEAR(port.rotation_time_us(find_atom(atoms, "QuadSub").bitstream_bytes),
              848.84, 0.05);
}

TEST(ReconfigPort, RotationTimeScalesInverselyWithBandwidth) {
  const ReconfigPort slow(33.0), fast(132.0);
  EXPECT_NEAR(slow.rotation_time_us(66000), 2000.0, 1e-9);
  EXPECT_NEAR(fast.rotation_time_us(66000), 500.0, 1e-9);
}

TEST(ReconfigPort, CyclesAtClock) {
  const ReconfigPort port(66.0);
  // 66,000 bytes at 66 B/µs = 1000 µs = 100,000 cycles at 100 MHz.
  EXPECT_EQ(port.rotation_time_cycles(66000, 100.0), 100000u);
}

TEST(ReconfigPort, NonzeroBitstreamNeverRoundsToZeroCycles) {
  // Regression: llround turned a sub-half-cycle transfer into a free
  // rotation. 1 byte at the Table-1 rate and a 1 MHz core is ~0.014 cycles
  // and must still cost a full cycle (ceiling semantics).
  const ReconfigPort port;
  EXPECT_GE(port.rotation_time_cycles(1, 1.0), 1u);
  EXPECT_GE(port.rotation_time_cycles(1, 100.0), 1u);
  // Zero bytes is genuinely free.
  EXPECT_EQ(port.rotation_time_cycles(0, 100.0), 0u);
}

TEST(ReconfigPort, CyclesRoundUpNotToNearest) {
  const ReconfigPort port(66.0);
  // 33 bytes at 66 B/µs = 0.5 µs = 50 cycles at 100 MHz — exact, no rounding.
  EXPECT_EQ(port.rotation_time_cycles(33, 100.0), 50u);
  // 1 byte at 66 B/µs on a 90 MHz core ≈ 1.36 cycles → ceiling 2 (llround
  // used to give 1: the tail of the transfer still occupies the port).
  EXPECT_EQ(port.rotation_time_cycles(1, 90.0), 2u);
}

TEST(ReconfigPort, RejectsBadParameters) {
  EXPECT_THROW(ReconfigPort(0.0), PreconditionError);
  EXPECT_THROW(ReconfigPort(-1.0), PreconditionError);
  const ReconfigPort port;
  EXPECT_THROW(port.rotation_time_cycles(100, 0.0), PreconditionError);
}

TEST(AreaModel, H264DefaultShape) {
  const auto model = AreaModel::h264_default();
  ASSERT_EQ(model.blocks().size(), 4u);
  // The Fig-1 narrative: MC has the largest area but only 17 % of the time;
  // ME the smallest area but the dominant share.
  const auto& blocks = model.blocks();
  double me_ge = 0, mc_ge = 0, mc_time = 0, me_time = 0;
  for (const auto& b : blocks) {
    if (b.name == "ME") { me_ge = b.gate_equivalents; me_time = b.time_share; }
    if (b.name == "MC") { mc_ge = b.gate_equivalents; mc_time = b.time_share; }
  }
  EXPECT_DOUBLE_EQ(model.max_ge(), mc_ge);
  EXPECT_NEAR(mc_time, 0.17, 1e-12);
  EXPECT_GT(me_time, 0.5);
  for (const auto& b : blocks) EXPECT_LE(me_ge, b.gate_equivalents);
}

TEST(AreaModel, SavingFormula) {
  const AreaModel m({{"A", 100, 0.5}, {"B", 300, 0.5}});
  EXPECT_DOUBLE_EQ(m.total_ge(), 400.0);
  EXPECT_DOUBLE_EQ(m.max_ge(), 300.0);
  EXPECT_DOUBLE_EQ(m.rispp_ge(1.0), 300.0);
  // (400 − 300)·100/400 = 25 %.
  EXPECT_DOUBLE_EQ(m.ge_saving_percent(1.0), 25.0);
  // α = 4/3 consumes the entire budget: saving 0.
  EXPECT_NEAR(m.ge_saving_percent(400.0 / 300.0), 0.0, 1e-9);
}

TEST(AreaModel, ConstraintFit) {
  const AreaModel m({{"A", 100, 0.4}, {"B", 200, 0.6}});
  EXPECT_TRUE(m.fits(1.0, 250));
  EXPECT_FALSE(m.fits(1.3, 250));
  EXPECT_NEAR(m.max_alpha(250), 1.25, 1e-12);
  EXPECT_THROW(m.max_alpha(100), PreconditionError);
}

TEST(AreaModel, ValidatesInput) {
  EXPECT_THROW(AreaModel({}), PreconditionError);
  EXPECT_THROW(AreaModel({{"A", 100, 0.5}}), PreconditionError);  // shares ≠ 1
  EXPECT_THROW(AreaModel({{"A", 0, 1.0}}), PreconditionError);    // zero GE
  EXPECT_THROW(AreaModel({{"A", 100, 1.5}}), PreconditionError);  // share > 1
  const AreaModel ok({{"A", 100, 1.0}});
  EXPECT_THROW(ok.rispp_ge(0.5), PreconditionError);  // α < 1
}

}  // namespace
