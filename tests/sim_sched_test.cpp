/// Scheduler-overhaul tests: the runnable-task ring must be scheduling-
/// equivalent to the seed's linear O(T) scan at stress scale, TaskSwitch
/// events must only appear for quanta that consume cycles, and the batched
/// emission path must hold up across concurrent simulators (run under TSan
/// via the `concurrency` label).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rispp/obs/event.hpp"
#include "rispp/sim/simulator.hpp"

namespace {

using namespace rispp::sim;
using rispp::isa::SiLibrary;
using rispp::obs::Event;
using rispp::obs::EventKind;
using rispp::obs::TraceRecorder;

/// Mixed stress workload: `count` tasks, every fourth a short early
/// finisher, every seventh pure bookkeeping (forecast + label only), the
/// rest forecast→execute→release loops — a ragged done/runnable mix that
/// exercises ring unlinking at scale.
void add_stress_tasks(Simulator& sim, const SiLibrary& lib, int count) {
  const auto satd = lib.index_of("SATD_4x4");
  const auto dct = lib.index_of("DCT_4x4");
  for (int t = 0; t < count; ++t) {
    Trace tr;
    if (t % 7 == 0) {
      tr.push_back(TraceOp::forecast(t % 2 ? satd : dct, 50));
      tr.push_back(TraceOp::label("bookkeeping-only task"));
    } else if (t % 4 == 0) {
      tr.push_back(TraceOp::compute(500));
    } else {
      tr.push_back(TraceOp::forecast(t % 2 ? satd : dct, 200));
      for (int i = 0; i < 5; ++i) {
        tr.push_back(TraceOp::compute(2000));
        tr.push_back(TraceOp::si(t % 2 ? satd : dct, 4));
      }
      tr.push_back(TraceOp::release(t % 2 ? satd : dct));
    }
    sim.add_task({"t" + std::to_string(t), std::move(tr)});
  }
}

SimResult run_stress(const SiLibrary& lib, int tasks, Scheduler scheduler,
                     Driving driving, TraceRecorder* recorder) {
  SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 3000;
  cfg.scheduler = scheduler;
  cfg.driving = driving;
  cfg.rt.sink = recorder;
  Simulator sim(borrow(lib), cfg);
  add_stress_tasks(sim, lib, tasks);
  return sim.run();
}

TEST(SchedulerDifferential, RingMatchesLinearScanAt512Tasks) {
  const auto lib = SiLibrary::h264();
  TraceRecorder ring_rec, linear_rec;
  const auto ring = run_stress(lib, 512, Scheduler::RunnableRing,
                               Driving::Wakeups, &ring_rec);
  const auto linear = run_stress(lib, 512, Scheduler::LinearScan,
                                 Driving::Wakeups, &linear_rec);

  EXPECT_EQ(ring.total_cycles, linear.total_cycles);
  EXPECT_EQ(ring.task_cycles, linear.task_cycles);
  EXPECT_EQ(ring.rotations, linear.rotations);
  EXPECT_EQ(ring.energy_total_nj, linear.energy_total_nj);
  ASSERT_EQ(ring_rec.events().size(), linear_rec.events().size());
  EXPECT_TRUE(ring_rec.events() == linear_rec.events())
      << "ring and linear-scan schedulers diverged in the event stream";
}

TEST(SchedulerDifferential, FastKernelMatchesSeedEquivalentDriving) {
  // Full fast path (ring + wakeup-horizon cache) against the full
  // seed-equivalent path (linear scan + poll-every-switch): identical
  // behaviour, not just identical totals.
  const auto lib = SiLibrary::h264();
  TraceRecorder fast_rec, seed_rec;
  const auto fast = run_stress(lib, 96, Scheduler::RunnableRing,
                               Driving::Wakeups, &fast_rec);
  const auto seed = run_stress(lib, 96, Scheduler::LinearScan,
                               Driving::PollEverySwitch, &seed_rec);
  EXPECT_EQ(fast.total_cycles, seed.total_cycles);
  EXPECT_EQ(fast.task_cycles, seed.task_cycles);
  EXPECT_EQ(fast.rotations, seed.rotations);
  EXPECT_TRUE(fast_rec.events() == seed_rec.events());
}

TEST(SchedulerDifferential, RerunAfterCompletionIsANoop) {
  // A second run() starts with every task finished: the ring is built
  // empty and the result must be the settled state, not a crash or replay.
  const auto lib = SiLibrary::h264();
  SimConfig cfg;
  cfg.rt.atom_containers = 4;
  Simulator sim(borrow(lib), cfg);
  add_stress_tasks(sim, lib, 8);
  const auto first = sim.run();
  const auto second = sim.run();
  EXPECT_EQ(second.total_cycles, first.total_cycles);
  EXPECT_EQ(second.task_cycles, first.task_cycles);
}

TEST(TaskSwitchSuppression, ZeroWorkQuantaEmitNoSwitch) {
  const auto lib = SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");

  TraceRecorder recorder;
  SimConfig cfg;
  cfg.rt.atom_containers = 4;
  cfg.rt.sink = &recorder;
  Simulator sim(borrow(lib), cfg);

  Trace busy;  // task 0: three quanta of real work
  busy.push_back(TraceOp::compute(30000));
  Trace meta;  // task 1: pure bookkeeping, consumes zero cycles
  meta.push_back(TraceOp::forecast(satd, 100));
  meta.push_back(TraceOp::label("zero-work quantum"));
  meta.push_back(TraceOp::release(satd));
  sim.add_task({"busy", std::move(busy)});
  sim.add_task({"meta", std::move(meta)});
  const auto result = sim.run();

  // The seed recorded TaskSwitch(busy) → TaskSwitch(meta) → TaskSwitch(busy)
  // with a zero-length meta interval in the middle. Suppressed, the stream
  // reads as busy running straight through: exactly one switch, and no
  // switch ever points at the zero-work task.
  std::vector<Event> switches;
  for (const auto& e : recorder.events())
    if (e.kind == EventKind::TaskSwitch) switches.push_back(e);
  ASSERT_EQ(switches.size(), 1u);
  EXPECT_EQ(switches[0].task, 0);
  EXPECT_EQ(switches[0].at, 0u);

  // The bookkeeping itself still happened and still carries its task id.
  bool saw_forecast = false;
  for (const auto& e : recorder.events())
    if (e.kind == EventKind::ForecastSeen && e.task == 1) saw_forecast = true;
  EXPECT_TRUE(saw_forecast);
  EXPECT_EQ(result.task_cycles.at("meta"), 0u);
  EXPECT_EQ(result.task_cycles.at("busy"), 30000u);
}

TEST(TaskSwitchSuppression, MidTraceZeroWorkTailIsSuppressed) {
  // A task whose *remaining* trace degenerates to bookkeeping stops
  // receiving switches from that point on, while its earlier worked quanta
  // still get them.
  const auto lib = SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");

  TraceRecorder recorder;
  SimConfig cfg;
  cfg.rt.atom_containers = 4;
  cfg.quantum = 1000;
  cfg.rt.sink = &recorder;
  Simulator sim(borrow(lib), cfg);

  Trace a;  // works for two quanta, then only a release remains
  a.push_back(TraceOp::compute(1500));
  a.push_back(TraceOp::release(satd));
  Trace b;
  b.push_back(TraceOp::compute(4000));
  sim.add_task({"a", std::move(a)});
  sim.add_task({"b", std::move(b)});
  (void)sim.run();

  // a@0 (work), b@1000, a@... (work: 500 cycles + release), b@...; after a
  // finishes, b runs alone — and a's final visit had work (the compute
  // tail), so it was announced. Count switches per task and assert no
  // zero-length interval: consecutive switches never share a timestamp.
  const auto& events = recorder.events();
  std::vector<Event> switches;
  for (const auto& e : events)
    if (e.kind == EventKind::TaskSwitch) switches.push_back(e);
  ASSERT_GE(switches.size(), 3u);
  for (std::size_t i = 1; i < switches.size(); ++i)
    EXPECT_LT(switches[i - 1].at, switches[i].at)
        << "zero-length task-switch interval leaked through at index " << i;
}

TEST(BatchedEmission, ConcurrentSimulatorsProduceIdenticalStreams) {
  // The sweep-engine shape: many simulators on their own threads, sharing
  // one immutable library snapshot, each with a private recorder fed
  // through the manager's EventBatch. TSan (ctest -L concurrency) checks
  // the batching layer introduced no shared mutable state; the equality
  // assertion checks batching stayed deterministic under contention.
  const auto lib = share(SiLibrary::h264());
  constexpr int kThreads = 8;
  std::vector<TraceRecorder> recorders(kThreads);
  std::vector<SimResult> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        SimConfig cfg;
        cfg.rt.atom_containers = 6;
        cfg.quantum = 3000;
        cfg.rt.sink = &recorders[i];
        Simulator sim(lib, cfg);
        add_stress_tasks(sim, *lib, 48);
        results[i] = sim.run();
      });
    for (auto& t : threads) t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].total_cycles, results[0].total_cycles);
    EXPECT_TRUE(recorders[i].events() == recorders[0].events())
        << "thread " << i << " saw a different event stream";
  }
  EXPECT_FALSE(recorders[0].events().empty());
}

}  // namespace
