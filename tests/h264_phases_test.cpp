/// The frame-level library and phase workload behind the Fig-1 dynamic
/// study: calibration, trace structure, and the rotation-across-phases
/// behaviour end to end.

#include <gtest/gtest.h>

#include "rispp/baseline/asip.hpp"
#include "rispp/h264/phases.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::h264;
using rispp::isa::SiLibrary;

class FrameLibrary : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264_frame();
};

TEST_F(FrameLibrary, ContainsAllClusters) {
  EXPECT_EQ(lib_.size(), 9u);  // 4 base + SAD + 2 MC + IDCT + LF
  for (const char* name : {"HT_2x2", "HT_4x4", "DCT_4x4", "SATD_4x4",
                           "SAD_4x4", "MC_HPEL_4x4", "MC_QPEL_4x4",
                           "IDCT_4x4", "LF_EDGE_4"})
    EXPECT_TRUE(lib_.contains(name)) << name;
  EXPECT_EQ(lib_.catalog().size(), 10u);
  EXPECT_TRUE(lib_.catalog().contains("SixTap"));
  EXPECT_TRUE(lib_.catalog().contains("EdgeFilter"));
}

TEST_F(FrameLibrary, BaseMoleculesEmbedUnchanged) {
  // Table-2 SIs must behave identically in the extended atom space.
  const auto base = SiLibrary::h264();
  for (const auto& si : base.sis()) {
    const auto& ext = lib_.find(si.name());
    EXPECT_EQ(ext.software_cycles(), si.software_cycles());
    ASSERT_EQ(ext.options().size(), si.options().size());
    for (std::size_t i = 0; i < si.options().size(); ++i) {
      EXPECT_EQ(ext.options()[i].cycles, si.options()[i].cycles);
      EXPECT_EQ(lib_.catalog().rotatable_determinant(ext.options()[i].atoms),
                base.catalog().rotatable_determinant(si.options()[i].atoms));
    }
  }
}

TEST_F(FrameLibrary, McUsesSixTapClipOnly) {
  for (const char* name : {"MC_HPEL_4x4", "MC_QPEL_4x4"}) {
    for (const auto& o : lib_.find(name).options()) {
      EXPECT_GT(o.atoms[lib_.catalog().index_of("SixTap")], 0u) << name;
      EXPECT_EQ(o.atoms[lib_.catalog().index_of("Transform")], 0u) << name;
      EXPECT_EQ(o.atoms[lib_.catalog().index_of("EdgeFilter")], 0u) << name;
    }
  }
}

TEST_F(FrameLibrary, EveryNewSiHasProperPareto) {
  for (const char* name : {"MC_HPEL_4x4", "MC_QPEL_4x4", "LF_EDGE_4"}) {
    const auto front = lib_.find(name).pareto_front(lib_.catalog());
    ASSERT_GE(front.size(), 2u) << name;
    EXPECT_GT(lib_.find(name).max_speedup(), 10.0) << name;
  }
}

TEST_F(FrameLibrary, PhaseCalibrationMatchesFig1Shares) {
  const auto phases = fig1_phases();
  ASSERT_EQ(phases.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& ph : phases) total += phase_software_cycles(lib_, ph);
  EXPECT_EQ(total, 240000u);
  // ME 55 %, MC 17 %, TQ 18 %, LF 10 %.
  EXPECT_EQ(phase_software_cycles(lib_, phases[0]), 132000u);
  EXPECT_EQ(phase_software_cycles(lib_, phases[1]), 40800u);
  EXPECT_EQ(phase_software_cycles(lib_, phases[2]), 43200u);
  EXPECT_EQ(phase_software_cycles(lib_, phases[3]), 24000u);
}

TEST_F(FrameLibrary, MeIsSmallestHardwareMcLargest) {
  // The Fig-1 mismatch: the dominant-time phase (ME) needs the least
  // hardware; the 17 %-time phase (MC) the most.
  const auto phases = fig1_phases();
  const rispp::baseline::Asip asip(lib_);
  auto union_atoms = [&](const PhaseModel& ph) {
    rispp::atom::Molecule u = lib_.catalog().zero();
    for (const auto& [name, count] : ph.si_calls) {
      (void)count;
      u = u.unite(lib_.catalog().project_rotatable(asip.chosen(name).atoms));
    }
    return u.determinant();
  };
  const auto me = union_atoms(phases[0]);
  const auto mc = union_atoms(phases[1]);
  const auto tq = union_atoms(phases[2]);
  const auto lf = union_atoms(phases[3]);
  EXPECT_LT(me, mc);
  EXPECT_LT(lf, mc);
  EXPECT_LE(tq, mc + 8);  // TQ is transform-heavy but not above MC by much
  EXPECT_GT(mc, 12u);
}

TEST_F(FrameLibrary, IdealHwCyclesShrinkWithBudget) {
  const auto phases = fig1_phases();
  for (const auto& ph : phases) {
    const auto sw = phase_software_cycles(lib_, ph);
    std::uint64_t prev = sw;
    for (std::uint64_t budget : {4ull, 8ull, 16ull}) {
      const auto hw = phase_ideal_hw_cycles(lib_, ph, budget);
      EXPECT_LE(hw, prev) << ph.name;
      prev = hw;
    }
    EXPECT_LT(prev, sw) << ph.name;
  }
}

TEST(PhaseTrace, StructureAndCounts) {
  const auto lib = SiLibrary::h264_frame();
  PhaseTraceParams p;
  p.frames = 1;
  p.macroblocks_per_frame = 4;
  const auto trace = make_phase_trace(lib, p);

  rispp::sim::SimConfig cfg;
  cfg.rt.record_events = false;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  sim.add_task({"f", trace});
  const auto r = sim.run();
  EXPECT_EQ(r.si("SAD_4x4").invocations, 4u * 192u);
  EXPECT_EQ(r.si("MC_HPEL_4x4").invocations, 4u * 16u);
  EXPECT_EQ(r.si("LF_EDGE_4").invocations, 4u * 64u);
  EXPECT_EQ(r.timeline.size(), 4u);  // one label per phase
}

TEST(PhaseTrace, NoForecastsMeansAllSoftware) {
  const auto lib = SiLibrary::h264_frame();
  PhaseTraceParams p;
  p.frames = 1;
  p.macroblocks_per_frame = 3;
  p.forecasts = false;
  rispp::sim::SimConfig cfg;
  cfg.rt.record_events = false;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  sim.add_task({"f", make_phase_trace(lib, p)});
  const auto r = sim.run();
  EXPECT_EQ(r.total_cycles, 3u * 240000u);
  EXPECT_EQ(r.rotations, 0u);
}

TEST(PhaseTrace, RotatingPlatformApproachesAsipSpeed) {
  // The Fig-1 claim: RISPP upholds the extensible processor's performance
  // while rotating through the phases. With a 12-AC budget and several
  // frames to amortize warm-up, RISPP must land within 20 % of the
  // all-dedicated ASIP and far from software.
  const auto lib = SiLibrary::h264_frame();
  const auto phases = fig1_phases();
  const rispp::baseline::Asip asip(lib);
  std::uint64_t asip_per_mb = 0, sw_per_mb = 0;
  for (const auto& ph : phases) {
    asip_per_mb += ph.compute_cycles;
    sw_per_mb += phase_software_cycles(lib, ph);
    for (const auto& [name, count] : ph.si_calls)
      asip_per_mb += count * asip.cycles(name);
  }

  PhaseTraceParams p;
  p.frames = 4;
  p.macroblocks_per_frame = 50;
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 12;
  cfg.rt.record_events = false;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  sim.add_task({"f", make_phase_trace(lib, p)});
  const auto r = sim.run();
  const double per_mb = static_cast<double>(r.total_cycles) /
                        static_cast<double>(p.frames * p.macroblocks_per_frame);
  EXPECT_LT(per_mb, 1.20 * static_cast<double>(asip_per_mb));
  // The ASIP itself only reaches ~1.94x here (ME compute dominates), so the
  // software bound is 0.55x, not 0.5x.
  EXPECT_LT(per_mb, 0.55 * static_cast<double>(sw_per_mb));
  EXPECT_GT(r.rotations, 8u);  // phases actually rotated
}

TEST(PhaseTrace, LookaheadReducesSoftwareWarmup) {
  const auto lib = SiLibrary::h264_frame();
  auto run_sw_execs = [&](bool lookahead) {
    PhaseTraceParams p;
    p.frames = 3;
    p.macroblocks_per_frame = 40;
    p.lookahead = lookahead;
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = 12;
    cfg.rt.record_events = false;
    rispp::sim::Simulator sim(borrow(lib), cfg);
    sim.add_task({"f", make_phase_trace(lib, p)});
    const auto r = sim.run();
    std::uint64_t sw = 0;
    for (const auto& [name, st] : r.per_si) sw += st.sw_invocations;
    return sw;
  };
  EXPECT_LE(run_sw_execs(true), run_sw_execs(false));
}

TEST(DecoderPhases, CalibrationAndStructure) {
  const auto lib = SiLibrary::h264_frame();
  const auto dec = decoder_phases();
  ASSERT_EQ(dec.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& ph : dec) total += phase_software_cycles(lib, ph);
  // "~2x computation increase for encoding relative to decoding": decoder
  // ≈ half the encoder's 240k.
  EXPECT_EQ(total, 120000u);
  // Entropy decode has no SIs — pure control/bit-parsing work.
  EXPECT_TRUE(dec[0].si_calls.empty());
  EXPECT_EQ(dec[2].si_calls.front().first, "IDCT_4x4");
}

TEST(DecoderPhases, IdctSharesTransformAtomsWithDct) {
  // Cross-SI atom reuse (the heart of §3): the decoder's inverse transform
  // runs on the same Transform/Pack atoms as the encoder's DCT.
  const auto lib = SiLibrary::h264_frame();
  const auto& cat = lib.catalog();
  const auto& idct = lib.find("IDCT_4x4");
  // Atoms loaded for the fastest DCT molecule support an IDCT molecule.
  rispp::atom::Molecule loaded = cat.zero();
  loaded.set(cat.index_of("QuadSub"), 4);
  loaded.set(cat.index_of("Pack"), 4);
  loaded.set(cat.index_of("Transform"), 4);
  const auto* opt = idct.fastest_supported(loaded, cat);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->cycles, 9u);
}

TEST(MultimediaTv, EncoderAndDecoderShareContainers) {
  // §2's Multimedia-TV scenario: both tasks reach hardware execution on a
  // shared container set, and total time beats all-software by far.
  const auto lib = SiLibrary::h264_frame();
  PhaseTraceParams p;
  p.frames = 2;
  p.macroblocks_per_frame = 20;
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 12;
  cfg.rt.record_events = false;
  cfg.quantum = 30000;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  sim.add_task({"enc", make_phase_trace(lib, p, fig1_phases())});
  sim.add_task({"dec", make_phase_trace(lib, p, decoder_phases())});
  const auto r = sim.run();

  const std::uint64_t mbs = p.frames * p.macroblocks_per_frame;
  // Short run (40 MB pairs) → the rotation warm-up still weighs in; the
  // longer multimedia_tv bench reaches ~0.57×SW.
  EXPECT_LT(r.total_cycles, mbs * (240000 + 120000) * 13 / 20);
  EXPECT_GT(r.si("IDCT_4x4").hw_invocations, 0u);
  EXPECT_GT(r.si("SAD_4x4").hw_invocations, 0u);
}

TEST(MultimediaTv, PerTaskReleaseDoesNotKillOtherTasksDemand) {
  // Both tasks forecast MC_HPEL_4x4; when the decoder releases it, the
  // encoder's demand must stay active (demands are keyed per task).
  const auto lib = SiLibrary::h264_frame();
  const auto hpel = lib.index_of("MC_HPEL_4x4");
  rispp::rt::RtConfig cfg;
  cfg.atom_containers = 8;
  rispp::rt::RisppManager mgr(borrow(lib), cfg);
  mgr.forecast(hpel, 100, 1.0, 0, /*task=*/0);
  mgr.forecast(hpel, 200, 1.0, 0, /*task=*/1);
  EXPECT_EQ(mgr.active_demands().size(), 1u);  // aggregated per SI
  EXPECT_DOUBLE_EQ(mgr.active_demands().front().expected_executions, 300.0);
  mgr.forecast_release(hpel, 10, /*task=*/1);
  ASSERT_EQ(mgr.active_demands().size(), 1u);
  EXPECT_DOUBLE_EQ(mgr.active_demands().front().expected_executions, 100.0);
  mgr.forecast_release(hpel, 20, /*task=*/0);
  EXPECT_TRUE(mgr.active_demands().empty());
}

TEST(PhaseTrace, Preconditions) {
  const auto lib = SiLibrary::h264_frame();
  PhaseTraceParams p;
  p.frames = 0;
  EXPECT_THROW(make_phase_trace(lib, p), rispp::util::PreconditionError);
}

}  // namespace
