/// The trace text format: parsing, error reporting, round-trips, and
/// execution equivalence with programmatically built traces.

#include <gtest/gtest.h>

#include <sstream>

#include "rispp/sim/simulator.hpp"
#include "rispp/sim/trace_io.hpp"

namespace {

using namespace rispp::sim;
using rispp::isa::SiLibrary;

const char* kTwoTasks = R"(
# Fig-6-flavoured two-task scenario
task A
  forecast SATD_4x4 256 0.9
  compute 30000
  si SATD_4x4 10
  label "A warmed up"
task B
  compute 50000
  si HT_2x2           # count defaults to 1
  release SATD_4x4
)";

TEST(TraceIo, ParsesTwoTasks) {
  const auto lib = SiLibrary::h264();
  const auto tasks = parse_tasks(kTwoTasks, lib);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].name, "A");
  ASSERT_EQ(tasks[0].trace.size(), 4u);
  EXPECT_EQ(tasks[0].trace[0].kind, TraceOp::Kind::Forecast);
  EXPECT_DOUBLE_EQ(tasks[0].trace[0].expected, 256.0);
  EXPECT_DOUBLE_EQ(tasks[0].trace[0].probability, 0.9);
  EXPECT_EQ(tasks[0].trace[2].count, 10u);
  EXPECT_EQ(tasks[0].trace[3].text, "A warmed up");
  ASSERT_EQ(tasks[1].trace.size(), 3u);
  EXPECT_EQ(tasks[1].trace[1].count, 1u);  // default count
  EXPECT_EQ(tasks[1].trace[2].kind, TraceOp::Kind::Release);
}

TEST(TraceIo, RoundTrip) {
  const auto lib = SiLibrary::h264();
  const auto tasks = parse_tasks(kTwoTasks, lib);
  std::ostringstream os;
  write_tasks(os, tasks, lib);
  const auto reparsed = parse_tasks(os.str(), lib);
  ASSERT_EQ(reparsed.size(), tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    ASSERT_EQ(reparsed[t].trace.size(), tasks[t].trace.size());
    for (std::size_t o = 0; o < tasks[t].trace.size(); ++o) {
      EXPECT_EQ(reparsed[t].trace[o].kind, tasks[t].trace[o].kind);
      EXPECT_EQ(reparsed[t].trace[o].cycles, tasks[t].trace[o].cycles);
      EXPECT_EQ(reparsed[t].trace[o].si_index, tasks[t].trace[o].si_index);
      EXPECT_EQ(reparsed[t].trace[o].count, tasks[t].trace[o].count);
      EXPECT_EQ(reparsed[t].trace[o].text, tasks[t].trace[o].text);
    }
  }
  // Canonical: second write identical.
  std::ostringstream os2;
  write_tasks(os2, reparsed, lib);
  EXPECT_EQ(os2.str(), os.str());
}

TEST(TraceIo, ParsedTraceExecutesLikeBuiltTrace) {
  const auto lib = SiLibrary::h264();
  const std::string text =
      "task t\n  forecast SATD_4x4 500\n  compute 500000\n  si SATD_4x4 100\n";
  const auto tasks = parse_tasks(text, lib);

  Trace built;
  built.push_back(TraceOp::forecast(lib.index_of("SATD_4x4"), 500));
  built.push_back(TraceOp::compute(500000));
  built.push_back(TraceOp::si(lib.index_of("SATD_4x4"), 100));

  auto run = [&](Trace trace) {
    Simulator sim(borrow(lib), {});
    sim.add_task({"t", std::move(trace)});
    return sim.run().total_cycles;
  };
  EXPECT_EQ(run(tasks[0].trace), run(built));
}

TEST(TraceIo, HashInsideLabelIsNotAComment) {
  const auto lib = SiLibrary::h264();
  const auto tasks =
      parse_tasks("task t\n  label \"phase #2 starts\"\n", lib);
  EXPECT_EQ(tasks[0].trace[0].text, "phase #2 starts");
}

TEST(TraceIo, ErrorsCarryLineNumbers) {
  const auto lib = SiLibrary::h264();
  auto expect_error_at = [&](const std::string& text, std::size_t line) {
    try {
      parse_tasks(text, lib);
      FAIL() << "expected TraceParseError";
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_at("compute 5\n", 1);                       // op before task
  expect_error_at("task t\n  si NOPE 3\n", 2);             // unknown SI
  expect_error_at("task t\n  compute abc\n", 2);           // bad number
  expect_error_at("task t\n  si SATD_4x4 0\n", 2);         // zero count
  expect_error_at("task t\n  forecast SATD_4x4 5 1.5\n", 2);  // bad prob
  expect_error_at("task t\n  label no-quotes\n", 2);       // unquoted label
  expect_error_at("task t\n  frobnicate 1\n", 2);          // unknown op
  expect_error_at("", 0);                                  // empty input
}

TEST(TraceIo, RejectsNonDigitLeadingNumbers) {
  // Regression: std::stoull silently wrapped "-1" to 2^64−1 and accepted
  // "+5"; counts and cycles must be plain digit-leading integers.
  const auto lib = SiLibrary::h264();
  for (const char* text : {
           "task t\n  si SATD_4x4 -1\n",
           "task t\n  compute -1\n",
           "task t\n  compute +5\n",
           "task t\n  si SATD_4x4 0x10\n",  // stoull(base 10) stops at 'x'
       }) {
    try {
      parse_tasks(text, lib);
      FAIL() << "expected TraceParseError for: " << text;
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), 2u) << text;
    }
  }
  // Plain digits still parse.
  const auto tasks = parse_tasks("task t\n  compute 42\n", lib);
  EXPECT_EQ(tasks[0].trace[0].cycles, 42u);
}

TEST(TraceIo, RejectsUnterminatedQuote) {
  const auto lib = SiLibrary::h264();
  auto expect_error_at = [&](const std::string& text, std::size_t line) {
    try {
      parse_tasks(text, lib);
      FAIL() << "expected TraceParseError for: " << text;
    } catch (const TraceParseError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  // Regression: a quote left open to end-of-line was accepted as a label.
  expect_error_at("task t\n  label \"half open\n", 2);
  // An open quote must not swallow a trailing comment either.
  expect_error_at("task t\n  label \"half open # not a comment\n", 2);
  expect_error_at("task t\n  label \"a\"b\"\n", 2);  // stray third quote
  // Balanced quotes keep working, including '#' inside them.
  const auto tasks =
      parse_tasks("task t\n  label \"ok #1\"  # real comment\n", lib);
  EXPECT_EQ(tasks[0].trace[0].text, "ok #1");
}

}  // namespace
