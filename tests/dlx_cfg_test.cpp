/// The DLX tool-chain front end: static CFG extraction, dynamic profiling,
/// and the complete §4 flow over real code — extract → profile → forecast
/// pass, with the resulting FC plan validated against the program.

#include <gtest/gtest.h>

#include "rispp/cfg/probability.hpp"
#include "rispp/dlx/assembler.hpp"
#include "rispp/dlx/cfg_extract.hpp"
#include "rispp/dlx/h264_binding.hpp"
#include "rispp/forecast/forecast_pass.hpp"

namespace {

using namespace rispp::dlx;
using rispp::isa::SiLibrary;

class DlxCfgExtract : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
};

TEST_F(DlxCfgExtract, StraightLineIsOneBlock) {
  const auto prog = assemble(
      "  addi r1, r0, 1\n"
      "  addi r2, r0, 2\n"
      "  halt\n");
  const auto cfg = extract_cfg(prog, lib_);
  EXPECT_EQ(cfg.graph.block_count(), 1u);
  EXPECT_TRUE(cfg.graph.edges().empty());
  // 3 single-cycle instructions.
  EXPECT_EQ(cfg.graph.block(0).cycles, 3u);
}

TEST_F(DlxCfgExtract, LoopSplitsIntoBlocksWithBackEdge) {
  const auto prog = assemble(
      "      addi r1, r0, 10\n"   // block 0
      "loop: addi r1, r1, -1\n"   // block 1 (branch target)
      "      bne  r1, r0, loop\n"
      "      halt\n");            // block 2
  const auto cfg = extract_cfg(prog, lib_);
  ASSERT_EQ(cfg.graph.block_count(), 3u);
  // Edges: 0→1 (fallthrough), 1→1 (back edge), 1→2 (exit).
  EXPECT_TRUE(cfg.graph.find_edge(0, 1).has_value());
  EXPECT_TRUE(cfg.graph.find_edge(1, 1).has_value());
  EXPECT_TRUE(cfg.graph.find_edge(1, 2).has_value());
  EXPECT_EQ(cfg.graph.edges().size(), 3u);
}

TEST_F(DlxCfgExtract, SiUsageSitesRecorded) {
  const auto prog = assemble(
      "loop: si SATD_4x4 r4, r5, r6\n"
      "      bne r1, r0, loop\n"
      "      halt\n");
  const auto cfg = extract_cfg(prog, lib_);
  const auto sites = cfg.graph.usage_sites(lib_.index_of("SATD_4x4"));
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites.front(), 0u);
}

TEST_F(DlxCfgExtract, ProfileCountsMatchExecution) {
  const auto prog = assemble(
      "      addi r1, r0, 7\n"
      "loop: addi r1, r1, -1\n"
      "      bne  r1, r0, loop\n"
      "      halt\n");
  auto cfg = extract_cfg(prog, lib_);
  Cpu cpu(lib_, nullptr);
  cpu.load(prog);
  profile_cfg(cfg, cpu);
  EXPECT_EQ(cfg.graph.block(0).exec_count, 1u);   // entry
  EXPECT_EQ(cfg.graph.block(1).exec_count, 7u);   // loop body
  EXPECT_EQ(cfg.graph.block(2).exec_count, 1u);   // exit
  // Back edge taken 6 times, exit edge once.
  EXPECT_EQ(cfg.graph.edges()[*cfg.graph.find_edge(1, 1)].count, 6u);
  EXPECT_EQ(cfg.graph.edges()[*cfg.graph.find_edge(1, 2)].count, 1u);
  // Edge probabilities derive from the profile: 6/7 back, 1/7 out.
  EXPECT_NEAR(cfg.graph.edge_probability(*cfg.graph.find_edge(1, 1)),
              6.0 / 7.0, 1e-12);
}

TEST_F(DlxCfgExtract, JalJrApproximationCoversReturnFlow) {
  const auto prog = assemble(
      "      jal  f\n"
      "      halt\n"
      "f:    addi r5, r0, 1\n"
      "      jr   r31\n");
  auto cfg = extract_cfg(prog, lib_);
  Cpu cpu(lib_, nullptr);
  cpu.load(prog);
  profile_cfg(cfg, cpu);
  // The call and return edges carry one execution each.
  const auto call_block = cfg.block_of_instr[0];
  const auto func_block = cfg.block_of_instr[2];
  const auto ret_block = cfg.block_of_instr[1];
  EXPECT_EQ(cfg.graph.edges()[*cfg.graph.find_edge(call_block, func_block)].count, 1u);
  EXPECT_EQ(cfg.graph.edges()[*cfg.graph.find_edge(func_block, ret_block)].count, 1u);
  EXPECT_NO_THROW(cfg.graph.validate());
}

TEST_F(DlxCfgExtract, FullToolchainFlowPlacesForecastAheadOfHotLoop) {
  // A warm-up preamble followed by a hot SATD loop — the §4 pass over the
  // extracted+profiled graph must place the SATD forecast in the preamble,
  // not inside the loop (per-reach expectation there is ~1).
  const auto prog = assemble(
      "       .data 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "       addi r9, r0, 600\n"      // block 0: preamble head
      "warm:  addi r9, r9, -1\n"       // block 1: long warm-up loop
      "       bne  r9, r0, warm\n"
      "       addi r3, r0, 4000\n"     // block 2: hot-loop setup
      "hot:   si SATD_4x4 r4, r1, r2\n"  // block 3: the hot spot
      "       addi r3, r3, -1\n"
      "       bne  r3, r0, hot\n"
      "       halt\n");                // block 4
  auto cfg = extract_cfg(prog, lib_);
  Cpu cpu(lib_, nullptr);
  cpu.load(prog);
  bind_h264_sis(cpu, lib_);
  profile_cfg(cfg, cpu);

  EXPECT_EQ(cfg.graph.total_si_invocations(lib_.index_of("SATD_4x4")), 4000u);

  rispp::forecast::ForecastConfig fcfg;
  fcfg.atom_containers = 4;
  fcfg.alpha = 0.02;
  const auto plan = run_forecast_pass(cfg.graph, lib_, fcfg);
  ASSERT_GT(plan.total_points(), 0u);
  const auto hot_block = cfg.graph.usage_sites(lib_.index_of("SATD_4x4")).front();
  for (const auto& fb : plan.blocks) {
    EXPECT_NE(fb.block, hot_block);  // never at the usage site itself
    for (const auto& p : fb.points) {
      EXPECT_EQ(p.si_index, lib_.index_of("SATD_4x4"));
      EXPECT_GT(p.expected_executions, 100.0);
    }
  }
}

TEST_F(DlxCfgExtract, InjectForecastsAutomaticallyAcceleratesTheBinary) {
  // The complete §4 compiler: extract → profile → forecast pass → rewrite.
  // The source contains NO forecast instruction; the instrumented binary
  // reaches hardware execution on the RISPP platform and produces the same
  // results as the original.
  const auto prog = assemble(
      "       .data 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
      "       addi r9, r0, 800\n"
      "warm:  addi r9, r9, -1\n"
      "       bne  r9, r0, warm\n"
      "       addi r3, r0, 4000\n"
      "       addi r8, r0, 0\n"
      "hot:   si SATD_4x4 r4, r1, r2\n"
      "       add  r8, r8, r4\n"
      "       addi r3, r3, -1\n"
      "       bne  r3, r0, hot\n"
      "       print r8\n"
      "       halt\n");

  auto cfg = extract_cfg(prog, lib_);
  Cpu profiler(lib_, nullptr);
  profiler.load(prog);
  bind_h264_sis(profiler, lib_);
  profile_cfg(cfg, profiler);

  rispp::forecast::ForecastConfig fcfg;
  fcfg.atom_containers = 4;
  fcfg.alpha = 0.02;
  const auto plan = run_forecast_pass(cfg.graph, lib_, fcfg);
  ASSERT_GT(plan.total_points(), 0u);

  const auto instrumented = inject_forecasts(prog, cfg, plan, lib_);
  EXPECT_EQ(instrumented.code.size(),
            prog.code.size() + plan.total_points());

  // The instrumented binary on the RISPP platform.
  rispp::rt::RtConfig rcfg;
  rcfg.atom_containers = 4;
  rcfg.record_events = false;
  rispp::rt::RisppManager mgr(borrow(lib_), rcfg);
  Cpu accelerated(lib_, &mgr);
  accelerated.load(instrumented);
  bind_h264_sis(accelerated, lib_);
  accelerated.run();

  // The original binary on a plain core.
  Cpu plain(lib_, nullptr);
  plain.load(prog);
  bind_h264_sis(plain, lib_);
  plain.run();

  EXPECT_EQ(accelerated.prints(), plain.prints());  // identical semantics
  const auto& usage = accelerated.si_usage().at("SATD_4x4");
  EXPECT_GT(usage.hw, 3000u);  // mostly hardware after the warm-up loop
  EXPECT_LT(accelerated.cycles(), plain.cycles() / 2);
}

TEST_F(DlxCfgExtract, InjectPreservesControlFlowExactly) {
  // Branch-target relocation: a program with forward and backward branches
  // must compute the same values after injection, even with forecasts
  // inserted at branch targets.
  const auto prog = assemble(
      "       addi r1, r0, 5\n"
      "       addi r2, r0, 0\n"
      "loop:  si HT_2x2 r4, r0, r0\n"
      "       add  r2, r2, r1\n"
      "       addi r1, r1, -1\n"
      "       bne  r1, r0, loop\n"
      "       print r2\n"
      "       halt\n");
  auto cfg = extract_cfg(prog, lib_);
  Cpu profiler(lib_, nullptr);
  profiler.load(prog);
  bind_h264_sis(profiler, lib_);
  profile_cfg(cfg, profiler);

  // Hand-build a plan placing an FC at the loop head (block of 'loop').
  rispp::forecast::FcPlan plan;
  rispp::forecast::FcBlock fb;
  fb.block = cfg.block_of_instr[2];
  rispp::forecast::ForecastPoint pt;
  pt.block = fb.block;
  pt.si_index = lib_.index_of("HT_2x2");
  pt.probability = 1.0;
  pt.expected_executions = 5;
  fb.points.push_back(pt);
  plan.blocks.push_back(fb);

  const auto instrumented = inject_forecasts(prog, cfg, plan, lib_);
  Cpu cpu(lib_, nullptr);
  cpu.load(instrumented);
  bind_h264_sis(cpu, lib_);
  cpu.run();
  ASSERT_EQ(cpu.prints().size(), 1u);
  EXPECT_EQ(cpu.prints()[0], 15u);  // 5+4+3+2+1
}

}  // namespace
