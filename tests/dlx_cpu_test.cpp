#include <gtest/gtest.h>

#include "rispp/dlx/assembler.hpp"
#include "rispp/dlx/cpu.hpp"
#include "rispp/dlx/h264_binding.hpp"
#include "rispp/h264/reference.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::dlx;
using rispp::isa::SiLibrary;

class DlxCpu : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();

  Cpu make_cpu(rispp::rt::RisppManager* mgr = nullptr) {
    return Cpu(lib_, mgr);
  }

  std::vector<std::uint32_t> run_and_print(const std::string& src,
                                           rispp::rt::RisppManager* mgr = nullptr) {
    auto cpu = make_cpu(mgr);
    cpu.load(assemble(src));
    bind_h264_sis(cpu, lib_);
    cpu.run();
    return cpu.prints();
  }
};

TEST_F(DlxCpu, ArithmeticAndPrint) {
  const auto out = run_and_print(
      "  addi r1, r0, 6\n"
      "  addi r2, r0, 7\n"
      "  mul  r3, r1, r2\n"
      "  print r3\n"
      "  sub  r4, r3, r1\n"
      "  print r4\n"
      "  halt\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(out[1], 36u);
}

TEST_F(DlxCpu, RegisterZeroIsHardwired) {
  const auto out = run_and_print(
      "  addi r0, r0, 99\n"
      "  print r0\n"
      "  halt\n");
  EXPECT_EQ(out[0], 0u);
}

TEST_F(DlxCpu, LoopComputesSum) {
  // Sum 1..10 with a backwards branch.
  const auto out = run_and_print(
      "      addi r1, r0, 10\n"
      "      addi r2, r0, 0\n"
      "loop: add  r2, r2, r1\n"
      "      addi r1, r1, -1\n"
      "      bne  r1, r0, loop\n"
      "      print r2\n"
      "      halt\n");
  EXPECT_EQ(out[0], 55u);
}

TEST_F(DlxCpu, MemoryAndDataSegment) {
  const auto out = run_and_print(
      "  .data 11 22 33\n"
      "  lw r1, 4(r0)\n"   // data word 1
      "  addi r1, r1, 1\n"
      "  sw r1, 8(r0)\n"
      "  lw r2, 8(r0)\n"
      "  print r2\n"
      "  halt\n");
  EXPECT_EQ(out[0], 23u);
}

TEST_F(DlxCpu, JalAndJrImplementCalls) {
  const auto out = run_and_print(
      "      jal  func\n"
      "      print r5\n"
      "      halt\n"
      "func: addi r5, r0, 77\n"
      "      jr   r31\n");
  EXPECT_EQ(out[0], 77u);
}

TEST_F(DlxCpu, ShiftsAndComparisons) {
  const auto out = run_and_print(
      "  addi r1, r0, -8\n"
      "  addi r2, r0, 2\n"
      "  sra  r3, r1, r2\n"   // -8 >> 2 = -2
      "  print r3\n"
      "  slt  r4, r1, r0\n"   // -8 < 0 → 1
      "  print r4\n"
      "  halt\n");
  EXPECT_EQ(static_cast<std::int32_t>(out[0]), -2);
  EXPECT_EQ(out[1], 1u);
}

TEST_F(DlxCpu, CycleAccounting) {
  auto cpu = make_cpu();
  cpu.load(assemble(
      "  addi r1, r0, 1\n"  // 1 cycle
      "  lw   r2, 0(r0)\n"  // 2 cycles
      "  sw   r2, 4(r0)\n"  // 2 cycles
      "  halt\n"));          // 1 cycle
  cpu.run();
  EXPECT_EQ(cpu.cycles(), 6u);
  EXPECT_EQ(cpu.instructions(), 4u);
}

TEST_F(DlxCpu, SiComputesRealSatdAgainstReference) {
  // Two 4x4 blocks in the data segment; the SI must produce exactly the
  // reference SATD value.
  std::string src = "  .data";
  rispp::h264::Block4x4 cur{}, ref{};
  for (int i = 0; i < 16; ++i) {
    cur[i] = 100 + i * 3;
    ref[i] = 98 + ((i * 5) % 11);
  }
  for (int i = 0; i < 16; ++i) src += " " + std::to_string(cur[i]);
  src += "\n  .data";
  for (int i = 0; i < 16; ++i) src += " " + std::to_string(ref[i]);
  src +=
      "\n  addi r5, r0, 0\n"    // cur at byte 0
      "  addi r6, r0, 64\n"     // ref at byte 64
      "  si SATD_4x4 r4, r5, r6\n"
      "  print r4\n"
      "  halt\n";
  const auto out = run_and_print(src);
  EXPECT_EQ(out[0],
            static_cast<std::uint32_t>(rispp::h264::ref::satd_4x4(cur, ref)));
}

TEST_F(DlxCpu, SiLatencyComesFromTheManager) {
  // The same binary runs with software-Molecule latency without a manager,
  // and with hardware latency once the manager has rotated the atoms.
  // 1500 iterations: long enough that the ~350k-cycle rotation window ends
  // while the loop is still running (each SW iteration is ~547 cycles).
  const std::string src =
      "  forecast SATD_4x4, 1500\n"
      "  addi r1, r0, 0\n"
      "  addi r2, r0, 64\n"
      "  addi r3, r0, 1500\n"
      "loop: si SATD_4x4 r4, r1, r2\n"
      "  addi r3, r3, -1\n"
      "  bne r3, r0, loop\n"
      "  halt\n";

  auto run_cycles = [&](rispp::rt::RisppManager* mgr) {
    auto cpu = make_cpu(mgr);
    cpu.load(assemble(src));
    bind_h264_sis(cpu, lib_);
    cpu.run();
    return cpu;
  };

  const auto no_mgr = run_cycles(nullptr);
  EXPECT_EQ(no_mgr.si_usage().at("SATD_4x4").sw, 1500u);
  EXPECT_EQ(no_mgr.si_usage().at("SATD_4x4").hw, 0u);

  rispp::rt::RtConfig cfg;
  cfg.atom_containers = 4;
  cfg.record_events = false;
  rispp::rt::RisppManager mgr(borrow(lib_), cfg);
  const auto with_mgr = run_cycles(&mgr);
  const auto& usage = with_mgr.si_usage().at("SATD_4x4");
  EXPECT_EQ(usage.hw + usage.sw, 1500u);
  EXPECT_GT(usage.hw, 0u);  // rotations complete during the loop
  EXPECT_LT(with_mgr.cycles(), no_mgr.cycles());
}

TEST_F(DlxCpu, DctSiWritesTransformedBlock) {
  std::string src = "  .data";
  rispp::h264::Block4x4 res{};
  for (int i = 0; i < 16; ++i) {
    res[i] = (i % 4) * 2 - 3;
    src += " " + std::to_string(res[i]);
  }
  src +=
      "\n  addi r5, r0, 0\n"
      "  addi r6, r0, 64\n"
      "  si DCT_4x4 r4, r5, r6\n"
      "  lw r7, 64(r0)\n"   // DC coefficient written to memory
      "  print r7\n"
      "  print r4\n"        // and returned in rd
      "  halt\n";
  const auto out = run_and_print(src);
  const auto expected = rispp::h264::ref::dct_4x4(res)[0];
  EXPECT_EQ(static_cast<std::int32_t>(out[0]), expected);
  EXPECT_EQ(out[0], out[1]);
}

TEST_F(DlxCpu, RuntimeGuards) {
  auto cpu = make_cpu();
  cpu.load(assemble("  lw r1, 2(r0)\n  halt\n"));
  EXPECT_THROW(cpu.run(), rispp::util::PreconditionError);  // unaligned

  auto cpu2 = make_cpu();
  cpu2.load(assemble("  si SATD_4x4 r1, r2, r3\n  halt\n"));
  EXPECT_THROW(cpu2.run(), rispp::util::PreconditionError);  // unbound SI

  auto cpu3 = make_cpu();
  CpuConfig tight;
  tight.max_instructions = 10;
  Cpu bounded(lib_, nullptr, tight);
  bounded.load(assemble("spin: j spin\n"));
  EXPECT_THROW(bounded.run(), rispp::util::PreconditionError);  // no halt

  EXPECT_THROW(cpu3.load(assemble("  si NOPE r1, r2, r3\n  halt\n")),
               rispp::util::PreconditionError);  // unknown SI at load
}

TEST_F(DlxCpu, ProgramRunningOffTheEndThrows) {
  auto cpu = make_cpu();
  cpu.load(assemble("  nop\n"));
  cpu.step();
  EXPECT_THROW(cpu.step(), rispp::util::PreconditionError);
}

}  // namespace
