#include <gtest/gtest.h>

#include "rispp/h264/encoder.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::h264;

TEST(Video, FrameGeometry) {
  const VideoGenerator gen(64, 48, 7);
  const auto f = gen.frame(0);
  EXPECT_EQ(f.width, 64);
  EXPECT_EQ(f.height, 48);
  EXPECT_EQ(f.luma.size(), 64u * 48u);
  EXPECT_EQ(f.cb.size(), 32u * 24u);
  EXPECT_EQ(f.mb_cols(), 4);
  EXPECT_EQ(f.mb_rows(), 3);
}

TEST(Video, DeterministicFrames) {
  const VideoGenerator gen(32, 32, 123);
  const auto a = gen.frame(5);
  const auto b = gen.frame(5);
  EXPECT_EQ(a.luma, b.luma);
  EXPECT_EQ(a.cb, b.cb);
  EXPECT_EQ(a.cr, b.cr);
}

TEST(Video, MotionTranslatesContent) {
  // With zero noise, frame k+1 is frame k shifted by the motion vector.
  const VideoGenerator gen(64, 32, 9, /*mx=*/3, /*my=*/1, /*noise=*/0);
  const auto f0 = gen.frame(0);
  const auto f1 = gen.frame(1);
  // Interior sample: f1(x, y) = f0(x + 3, y + 1).
  for (int y = 4; y < 24; ++y)
    for (int x = 4; x < 56; ++x)
      EXPECT_EQ(f1.luma_at(x, y), f0.luma_at(x + 3, y + 1));
}

TEST(Video, EdgeClamping) {
  const VideoGenerator gen(32, 32, 1);
  const auto f = gen.frame(0);
  EXPECT_EQ(f.luma_at(-5, -5), f.luma_at(0, 0));
  EXPECT_EQ(f.luma_at(100, 100), f.luma_at(31, 31));
}

TEST(Video, RejectsBadGeometry) {
  EXPECT_THROW(VideoGenerator(30, 32, 1), rispp::util::PreconditionError);
  EXPECT_THROW(VideoGenerator(32, 0, 1), rispp::util::PreconditionError);
}

TEST(Encoder, MacroblockSiMixMatchesFig7) {
  // The per-MB invocation mix the whole evaluation rests on:
  // 256 SATD + 24 DCT + 1 HT_4x4 + 2 HT_2x2.
  const VideoGenerator gen(64, 48, 11);
  const Encoder enc;
  const auto st = enc.encode_macroblock(gen.frame(1), gen.frame(0), 1, 1);
  EXPECT_EQ(st.macroblocks, 1u);
  EXPECT_EQ(st.satd_ops, 256u);
  EXPECT_EQ(st.dct_ops, 24u);
  EXPECT_EQ(st.ht4_ops, 1u);
  EXPECT_EQ(st.ht2_ops, 2u);
}

TEST(Encoder, FrameAggregatesAllMacroblocks) {
  const VideoGenerator gen(64, 48, 11);
  const Encoder enc;
  const auto st = enc.encode_frame(gen.frame(1), gen.frame(0));
  EXPECT_EQ(st.macroblocks, 12u);  // 4 × 3 MBs
  EXPECT_EQ(st.satd_ops, 12u * 256u);
  EXPECT_EQ(st.dct_ops, 12u * 24u);
  EXPECT_DOUBLE_EQ(st.satd_per_mb(), 256.0);
  EXPECT_DOUBLE_EQ(st.dct_per_mb(), 24.0);
}

TEST(Encoder, MotionSearchFindsTrueDisplacement) {
  // Noise-free translation within the search range: the best candidates
  // should reconstruct the content almost exactly → tiny total SATD.
  const VideoGenerator still(64, 48, 13, /*mx=*/0, /*my=*/0, /*noise=*/0);
  const Encoder enc;
  const auto st = enc.encode_frame(still.frame(1), still.frame(0));
  EXPECT_EQ(st.total_satd, 0);
  EXPECT_EQ(st.total_distortion, 0);
}

TEST(Encoder, MovingContentWithinSearchRangeStaysCheap) {
  // Motion (1,1) per frame is inside the default 4x4 candidate grid, so the
  // encoder should find (near-)perfect matches without noise.
  const VideoGenerator mov(64, 48, 13, /*mx=*/1, /*my=*/1, /*noise=*/0);
  const Encoder enc;
  const auto st = enc.encode_frame(mov.frame(1), mov.frame(0));
  // Frame edges clamp, so allow a small non-zero residue.
  const auto frame_pixels = 64 * 48;
  EXPECT_LT(st.total_distortion, frame_pixels);
}

TEST(Encoder, NoiseIncreasesDistortion) {
  const VideoGenerator clean(64, 48, 17, 1, 1, 0);
  const VideoGenerator noisy(64, 48, 17, 1, 1, 12);
  const Encoder enc;
  const auto st_clean = enc.encode_frame(clean.frame(1), clean.frame(0));
  const auto st_noisy = enc.encode_frame(noisy.frame(1), noisy.frame(0));
  EXPECT_GT(st_noisy.total_distortion, st_clean.total_distortion);
  EXPECT_GT(st_noisy.nonzero_coeffs, st_clean.nonzero_coeffs);
}

TEST(Encoder, HigherQpFewerNonzeroCoefficients) {
  const VideoGenerator gen(64, 48, 19, 2, 1, 8);
  EncoderParams lo_qp;
  lo_qp.qp = 12;
  EncoderParams hi_qp;
  hi_qp.qp = 44;
  const auto st_lo = Encoder(lo_qp).encode_frame(gen.frame(1), gen.frame(0));
  const auto st_hi = Encoder(hi_qp).encode_frame(gen.frame(1), gen.frame(0));
  EXPECT_GT(st_lo.nonzero_coeffs, st_hi.nonzero_coeffs);
}

TEST(Encoder, ReconstructionMatchesSourceClosely) {
  // With moderate qp the decoder-side reconstruction must track the source:
  // PSNR well above 30 dB on this synthetic content.
  const VideoGenerator gen(64, 48, 21, 1, 1, 3);
  EncoderParams p;
  p.qp = 20;
  const auto st = Encoder(p).encode_frame(gen.frame(1), gen.frame(0));
  EXPECT_GT(st.psnr_luma, 30.0);
  EXPECT_LE(st.psnr_luma, 99.0);
}

TEST(Encoder, PsnrDegradesWithQp) {
  const VideoGenerator gen(64, 48, 23, 1, 1, 6);
  auto psnr_at = [&](int qp) {
    EncoderParams p;
    p.qp = qp;
    return Encoder(p).encode_frame(gen.frame(1), gen.frame(0)).psnr_luma;
  };
  const double lo = psnr_at(8), mid = psnr_at(28), hi = psnr_at(46);
  EXPECT_GT(lo, mid);
  EXPECT_GT(mid, hi);
}

TEST(Encoder, ReconstructedFrameExposed) {
  const VideoGenerator gen(32, 32, 25, 1, 0, 2);
  Frame recon;
  EncoderParams p;
  p.qp = 16;
  const auto st =
      Encoder(p).encode_frame(gen.frame(1), gen.frame(0), &recon);
  EXPECT_EQ(recon.width, 32);
  EXPECT_EQ(recon.luma.size(), gen.frame(1).luma.size());
  // The exposed frame is exactly what PSNR was computed against.
  EXPECT_DOUBLE_EQ(psnr_luma(gen.frame(1), recon), st.psnr_luma);
}

TEST(Encoder, SubpelRefinementNeverWorsensSatd) {
  const VideoGenerator gen(64, 48, 27, 2, 1, 4);
  EncoderParams base;
  EncoderParams refined = base;
  refined.subpel_refine = true;
  const auto st_base = Encoder(base).encode_frame(gen.frame(1), gen.frame(0));
  const auto st_ref =
      Encoder(refined).encode_frame(gen.frame(1), gen.frame(0));
  EXPECT_LE(st_ref.total_satd, st_base.total_satd);
  // 3 extra candidates per sub-block.
  EXPECT_EQ(st_ref.satd_ops, st_base.satd_ops + st_base.macroblocks * 48);
  EXPECT_EQ(st_ref.hpel_ops, st_base.macroblocks * 48);
  EXPECT_EQ(st_base.hpel_ops, 0u);
}

TEST(Encoder, SubpelRefinementHelpsOnHalfPelMotion) {
  // A half-pel-ish displacement cannot be matched by integer candidates;
  // the interpolated candidates must cut the residual noticeably.
  const VideoGenerator gen(64, 48, 29, 1, 0, 0);
  // Encode frame 1 against a "stretched" reference: use frame 0 shifted by
  // a fractional amount by comparing frame(1) against itself is trivial —
  // instead rely on the generator's integer shift plus noise-free content
  // and a coarser search step that leaves a 1-pixel miss.
  EncoderParams base;
  base.search_step = 2;  // integer grid misses odd displacements
  EncoderParams refined = base;
  refined.subpel_refine = true;
  const auto st_base = Encoder(base).encode_frame(gen.frame(1), gen.frame(0));
  const auto st_ref =
      Encoder(refined).encode_frame(gen.frame(1), gen.frame(0));
  EXPECT_LT(st_ref.total_satd, st_base.total_satd);
}

TEST(Encoder, TwoStageMeCutsSatdWorkWithSimilarQuality) {
  const VideoGenerator gen(64, 48, 39, 2, 1, 4);
  EncoderParams single;
  EncoderParams two = single;
  two.two_stage_me = true;
  two.satd_candidates = 4;
  const auto st1 = Encoder(single).encode_frame(gen.frame(1), gen.frame(0));
  const auto st2 = Encoder(two).encode_frame(gen.frame(1), gen.frame(0));
  // SATD work drops 16 → 4 per sub-block; SAD takes over the ranking.
  EXPECT_EQ(st2.satd_ops, st1.macroblocks * 16 * 4);
  EXPECT_EQ(st2.sad_ops, st1.macroblocks * 256);
  EXPECT_EQ(st1.sad_ops, 0u);
  // Quality stays close: the SAD pre-ranking keeps the true winner in the
  // top-4 almost always on this content.
  EXPECT_LE(st1.total_satd, st2.total_satd);
  EXPECT_LT(static_cast<double>(st2.total_satd),
            1.10 * static_cast<double>(st1.total_satd) + 100);
}

TEST(Deblock, SmoothsQuantizedReconstruction) {
  // Heavy quantization produces blocking; the loop filter must reduce the
  // mean discontinuity across 4x4 boundaries.
  const VideoGenerator gen(64, 48, 31, 1, 1, 4);
  Frame recon;
  EncoderParams p;
  p.qp = 40;
  Encoder(p).encode_frame(gen.frame(1), gen.frame(0), &recon);

  auto boundary_jump = [&](const Frame& f) {
    double sum = 0;
    int n = 0;
    for (int x = 4; x < f.width; x += 4)
      for (int y = 0; y < f.height; ++y) {
        sum += std::abs(static_cast<int>(f.luma_at(x, y)) -
                        static_cast<int>(f.luma_at(x - 1, y)));
        ++n;
      }
    return sum / n;
  };
  const double before = boundary_jump(recon);
  const auto edges = deblock_luma(recon, p.qp);
  const double after = boundary_jump(recon);
  EXPECT_GT(edges, 0u);
  EXPECT_LE(after, before);
}

TEST(Deblock, DisabledAtLowQp) {
  const VideoGenerator gen(32, 32, 33, 1, 1, 4);
  auto f = gen.frame(0);
  const auto copy = f.luma;
  EXPECT_EQ(deblock_luma(f, 5), 0u);  // alpha/beta tables are 0 below 16
  EXPECT_EQ(f.luma, copy);
}

TEST(Deblock, EdgeCountMatchesGeometry) {
  const VideoGenerator gen(64, 48, 35);
  auto f = gen.frame(0);
  // Vertical: 15 boundaries × 48 rows; horizontal: 11 × 64 columns.
  const auto edges = deblock_luma(f, 30);
  EXPECT_EQ(edges, 15u * 48u + 11u * 64u);
}

TEST(Psnr, IdenticalFramesCapAt99) {
  const VideoGenerator gen(32, 32, 37);
  const auto f = gen.frame(0);
  EXPECT_DOUBLE_EQ(psnr_luma(f, f), 99.0);
}

TEST(Encoder, ParamValidation) {
  EncoderParams p;
  p.qp = 99;
  EXPECT_THROW(Encoder{p}, rispp::util::PreconditionError);
  p = {};
  p.search_grid = 0;
  EXPECT_THROW(Encoder{p}, rispp::util::PreconditionError);
}

TEST(Encoder, FrameSizeMismatchThrows) {
  const VideoGenerator a(32, 32, 1), b(64, 32, 1);
  const Encoder enc;
  EXPECT_THROW(enc.encode_frame(a.frame(0), b.frame(0)),
               rispp::util::PreconditionError);
}

}  // namespace
