/// Run-time Molecule selection (paper §5b): greedy upgrade steps ordered by
/// marginal benefit per container, cross-checked against the exhaustive
/// optimum on small instances.

#include <gtest/gtest.h>

#include "rispp/rt/selection.hpp"

namespace {

using namespace rispp::rt;
using rispp::isa::SiLibrary;

class Selection : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
  GreedySelector sel_{lib_};

  ForecastDemand demand(const char* name, double execs) const {
    return ForecastDemand{lib_.index_of(name), execs, 1.0, -1};
  }
};

TEST_F(Selection, EmptyDemandsYieldEmptyPlan) {
  const auto plan = sel_.plan({}, 4);
  EXPECT_TRUE(plan.target.is_zero());
  EXPECT_TRUE(plan.steps.empty());
}

TEST_F(Selection, SingleSiGetsItsMinimalMoleculeFirst) {
  const auto plan = sel_.plan({demand("SATD_4x4", 256)}, 4);
  ASSERT_FALSE(plan.steps.empty());
  // First step must bring SATD from software (544) to hardware.
  EXPECT_EQ(plan.steps.front().old_cycles, 544u);
  EXPECT_EQ(plan.steps.front().new_cycles, 24u);
  EXPECT_EQ(lib_.catalog().rotatable_determinant(plan.target), 4u);
}

TEST_F(Selection, BudgetRespected) {
  for (std::uint64_t budget : {0ull, 2ull, 4ull, 6ull, 9ull, 16ull}) {
    const auto plan = sel_.plan({demand("SATD_4x4", 256), demand("DCT_4x4", 24),
                                 demand("HT_4x4", 1), demand("HT_2x2", 2)},
                                budget);
    EXPECT_LE(lib_.catalog().rotatable_determinant(plan.target), budget);
  }
}

TEST_F(Selection, StepsStrictlyImproveTheirSi) {
  const auto plan = sel_.plan({demand("SATD_4x4", 256), demand("DCT_4x4", 24)},
                              8);
  for (const auto& s : plan.steps) {
    EXPECT_LT(s.new_cycles, s.old_cycles);
    EXPECT_GT(s.gain_per_container, 0.0);
    EXPECT_FALSE(s.additional.is_zero());
  }
}

TEST_F(Selection, FourContainersCoverAllFourMinimalMolecules) {
  // The H.264 library's minimal Molecules nest: QuadSub+Pack+Transform+SATD
  // covers every SI's minimal requirement — the reason the paper's 4-Atom
  // configuration already delivers most of the speed-up (Fig 12).
  const auto plan = sel_.plan({demand("SATD_4x4", 256), demand("DCT_4x4", 24),
                               demand("HT_4x4", 1), demand("HT_2x2", 2)},
                              4);
  const auto& cat = lib_.catalog();
  EXPECT_EQ(lib_.find("SATD_4x4").cycles_with(plan.target, cat), 24u);
  EXPECT_EQ(lib_.find("DCT_4x4").cycles_with(plan.target, cat), 24u);
  EXPECT_EQ(lib_.find("HT_4x4").cycles_with(plan.target, cat), 22u);
  EXPECT_EQ(lib_.find("HT_2x2").cycles_with(plan.target, cat), 5u);
}

TEST_F(Selection, HigherWeightWinsContestedBudget) {
  // Two SIs, budget only fits one minimal molecule's worth of upgrades
  // beyond the shared base: the heavily-used SI gets the atoms.
  const auto plan_satd_heavy =
      sel_.plan({demand("SATD_4x4", 1000), demand("DCT_4x4", 1)}, 5);
  const auto plan_dct_heavy =
      sel_.plan({demand("SATD_4x4", 1), demand("DCT_4x4", 1000)}, 5);
  const auto& cat = lib_.catalog();
  EXPECT_LE(lib_.find("SATD_4x4").cycles_with(plan_satd_heavy.target, cat),
            lib_.find("SATD_4x4").cycles_with(plan_dct_heavy.target, cat));
  EXPECT_LE(lib_.find("DCT_4x4").cycles_with(plan_dct_heavy.target, cat),
            lib_.find("DCT_4x4").cycles_with(plan_satd_heavy.target, cat));
}

TEST_F(Selection, ZeroWeightDemandIgnored) {
  const auto plan = sel_.plan({demand("SATD_4x4", 0)}, 8);
  EXPECT_TRUE(plan.target.is_zero());
}

TEST_F(Selection, BenefitOfEmptyConfigIsZero) {
  EXPECT_DOUBLE_EQ(sel_.benefit(lib_.catalog().zero(), {demand("DCT_4x4", 5)}),
                   0.0);
}

TEST_F(Selection, GreedyNearOptimalVsExhaustive) {
  // Ablation check (DESIGN.md §6.4): greedy per-container upgrades are
  // exact at the paper's 4-container design point (the minimal Molecules
  // nest) and stay within 1 % of the exhaustive optimum at larger budgets,
  // where step-at-a-time upgrading can miss a bundled optimum.
  const std::vector<std::vector<ForecastDemand>> cases = {
      {demand("SATD_4x4", 256)},
      {demand("SATD_4x4", 256), demand("DCT_4x4", 24)},
      {demand("HT_4x4", 10), demand("HT_2x2", 10)},
      {demand("SATD_4x4", 256), demand("DCT_4x4", 24), demand("HT_4x4", 1),
       demand("HT_2x2", 2)},
  };
  for (const auto& demands : cases) {
    for (std::uint64_t budget : {4ull, 6ull, 8ull}) {
      const auto greedy = sel_.plan(demands, budget);
      const auto best = sel_.exhaustive(demands, budget);
      const double g = sel_.benefit(greedy.target, demands);
      const double b = sel_.benefit(best.target, demands);
      EXPECT_GE(g, 0.99 * b) << "budget " << budget;
      if (budget == 4) EXPECT_GE(g + 1e-9, b);
    }
  }
}

TEST_F(Selection, PlanTargetSupportsEveryStepEndpoint) {
  const auto plan = sel_.plan({demand("SATD_4x4", 256), demand("DCT_4x4", 24)},
                              10);
  const auto& cat = lib_.catalog();
  for (const auto& s : plan.steps) {
    // After all steps, each step's SI must run at least as fast as the step
    // promised.
    EXPECT_LE(lib_.at(s.si_index).cycles_with(plan.target, cat), s.new_cycles);
  }
}

}  // namespace
