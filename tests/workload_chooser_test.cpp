/// Chooser distributions: domain safety, determinism, and the statistical
/// shape properties the phased generator's traffic shaping relies on.

#include <gtest/gtest.h>

#include <vector>

#include "rispp/util/error.hpp"
#include "rispp/util/rng.hpp"
#include "rispp/workload/chooser.hpp"

namespace {

using rispp::util::PreconditionError;
using rispp::util::Xoshiro256;
using rispp::workload::Chooser;

std::vector<std::uint64_t> histogram(const Chooser& c, std::size_t n,
                                     std::size_t samples,
                                     std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> counts(n, 0);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto pick = c.pick(rng);
    EXPECT_LT(pick, n);
    ++counts[pick];
  }
  return counts;
}

TEST(Chooser, FactoriesValidate) {
  EXPECT_THROW(Chooser::uniform(0), PreconditionError);
  EXPECT_THROW(Chooser::zipfian(0), PreconditionError);
  EXPECT_THROW(Chooser::zipfian(4, 0.0), PreconditionError);
  EXPECT_THROW(Chooser::zipfian(4, 1.0), PreconditionError);
  EXPECT_THROW(Chooser::hot_set(0, 0.1, 0.9), PreconditionError);
  EXPECT_THROW(Chooser::hot_set(4, 0.0, 0.9), PreconditionError);
  EXPECT_THROW(Chooser::hot_set(4, 0.5, 1.5), PreconditionError);
  EXPECT_THROW(Chooser::weighted({}), PreconditionError);
  EXPECT_THROW(Chooser::weighted({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(Chooser::weighted({1.0, -1.0}), PreconditionError);
}

TEST(Chooser, PicksAreDeterministicPerSeed) {
  for (const auto& c :
       {Chooser::uniform(16), Chooser::zipfian(16, 0.9),
        Chooser::hot_set(16, 0.25, 0.8), Chooser::weighted({1, 2, 3, 4})}) {
    Xoshiro256 a(99), b(99);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(c.pick(a), c.pick(b));
  }
}

TEST(Chooser, UniformCoversTheDomainEvenly) {
  const std::size_t n = 8, samples = 80000;
  const auto counts = histogram(Chooser::uniform(n), n, samples);
  for (const auto c : counts) {
    EXPECT_GT(c, samples / n * 8 / 10);
    EXPECT_LT(c, samples / n * 12 / 10);
  }
}

TEST(ChooserProperty, ZipfianPreservesFrequencyRanking) {
  // The defining property: rank 0 is the most popular and popularity is
  // monotone non-increasing in rank (allowing sampling noise between
  // adjacent far-tail ranks, whose expected counts are nearly equal).
  for (const double theta : {0.5, 0.8, 0.99}) {
    const std::size_t n = 12, samples = 120000;
    const auto counts = histogram(Chooser::zipfian(n, theta), n, samples,
                                  /*seed=*/42);
    for (std::size_t i = 0; i + 1 < n; ++i)
      EXPECT_GE(counts[i] + counts[i] / 4 + 50, counts[i + 1])
          << "rank " << i << " vs " << i + 1 << " at theta " << theta;
    // Head dominance is strict and large.
    EXPECT_GT(counts[0], 2 * counts[n - 1]) << "theta " << theta;
    // Rank 0's share grows with skew: at theta=0.99 it must clearly beat
    // the uniform share.
    if (theta == 0.99) EXPECT_GT(counts[0], samples / n * 3);
  }
}

TEST(ChooserProperty, ZipfianSkewOrdersHeadShare) {
  const std::size_t n = 12, samples = 120000;
  const auto mild = histogram(Chooser::zipfian(n, 0.5), n, samples, 7);
  const auto steep = histogram(Chooser::zipfian(n, 0.99), n, samples, 7);
  EXPECT_GT(steep[0], mild[0]);
}

TEST(ChooserProperty, HotSetRespectsHotFraction) {
  const std::size_t n = 20, samples = 100000;
  const double fraction = 0.2, probability = 0.85;
  const auto chooser = Chooser::hot_set(n, fraction, probability);
  EXPECT_EQ(chooser.hot_count(), 4u);
  const auto counts = histogram(chooser, n, samples, 5);
  std::uint64_t hot = 0;
  for (std::size_t i = 0; i < chooser.hot_count(); ++i) hot += counts[i];
  const double hot_share = static_cast<double>(hot) / samples;
  EXPECT_NEAR(hot_share, probability, 0.02);
  // Within each group picks are uniform: every hot index clearly beats
  // every cold index at these parameters.
  std::uint64_t min_hot = counts[0], max_cold = 0;
  for (std::size_t i = 0; i < chooser.hot_count(); ++i)
    min_hot = std::min(min_hot, counts[i]);
  for (std::size_t i = chooser.hot_count(); i < n; ++i)
    max_cold = std::max(max_cold, counts[i]);
  EXPECT_GT(min_hot, max_cold);
}

TEST(ChooserProperty, HotSetSmallFractionStillHasOneHotIndex) {
  const auto chooser = Chooser::hot_set(3, 0.01, 0.9);
  EXPECT_EQ(chooser.hot_count(), 1u);
  const auto counts = histogram(chooser, 3, 30000, 3);
  EXPECT_GT(counts[0], counts[1] + counts[2]);
}

TEST(Chooser, WeightedFollowsTheWeights) {
  const std::size_t samples = 90000;
  const auto counts =
      histogram(Chooser::weighted({1.0, 2.0, 6.0}), 3, samples, 11);
  EXPECT_NEAR(static_cast<double>(counts[0]) / samples, 1.0 / 9, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / samples, 2.0 / 9, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / samples, 6.0 / 9, 0.01);
}

TEST(Chooser, WeightedSkipsZeroWeightIndices) {
  const auto counts =
      histogram(Chooser::weighted({0.0, 1.0, 0.0, 1.0}), 4, 20000, 13);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_GT(counts[1], 0u);
  EXPECT_GT(counts[3], 0u);
}

TEST(Chooser, DescribeNamesTheShape) {
  EXPECT_EQ(Chooser::uniform(4).describe(), "uniform over 4");
  EXPECT_EQ(Chooser::zipfian(8, 0.9).describe(), "zipfian(0.9) over 8");
  EXPECT_EQ(Chooser::hot_set(10, 0.2, 0.9).describe(),
            "hotset(0.2,0.9) over 10");
  EXPECT_EQ(Chooser::weighted({1, 1}).describe(), "weighted over 2");
}

}  // namespace
