#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rispp/util/csv.hpp"
#include "rispp/util/error.hpp"
#include "rispp/util/rng.hpp"
#include "rispp/util/stats.hpp"
#include "rispp/util/table.hpp"

namespace {

using namespace rispp::util;

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceApproximatesProbability) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.total(), 40.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  // Population variance is 4; sample variance 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, EmptyThrowsOnMinMax) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_THROW(a.min(), PreconditionError);
  EXPECT_THROW(a.max(), PreconditionError);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, left, right;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(left.min(), all.min(), 0.0);
  EXPECT_NEAR(left.max(), all.max(), 0.0);
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(Accumulator, MergeEmptyWithEmptyStaysEmpty) {
  Accumulator a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_THROW(a.min(), PreconditionError);
  // Still usable after the empty merge.
  a.add(5.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Accumulator, MergeEmptyIntoNonEmptyPreservesMinMax) {
  Accumulator a, empty;
  a.add(-2.0);
  a.add(7.0);
  a.merge(empty);
  // min_/max_ of a default-constructed accumulator are 0 — they must not
  // leak into the merged extrema.
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
  EXPECT_DOUBLE_EQ(a.total(), 5.0);
  Accumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.min(), -2.0);
  EXPECT_DOUBLE_EQ(b.max(), 7.0);
}

TEST(Accumulator, MergeTwoSingleSamplesGivesTwoSampleVariance) {
  Accumulator a, b;
  a.add(2.0);
  b.add(6.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);  // n−1 denominator, n = 1
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  // Sample variance of {2, 6}: ((2−4)² + (6−4)²) / 1 = 8.
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(Accumulator, MergeSingleIntoManyMatchesSequential) {
  Accumulator merged, sequential, single;
  for (double x : {1.0, 2.0, 3.0}) {
    merged.add(x);
    sequential.add(x);
  }
  single.add(10.0);
  sequential.add(10.0);
  merged.merge(single);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_NEAR(merged.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), sequential.variance(), 1e-12);
}

TEST(Histogram, BucketsAndSaturation) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 4
  h.add(-3.0);  // clamps to bucket 0
  h.add(42.0);  // clamps to bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, PercentileReturnsBucketEdges) {
  Histogram h(0.0, 10.0, 5);  // buckets of width 2
  for (int i = 0; i < 9; ++i) h.add(1.0);  // bucket 0: [0, 2)
  h.add(9.0);                              // bucket 4: [8, 10)
  // Nearest rank: ceil(0.5 * 10) = 5th sample → bucket 0.
  EXPECT_EQ(h.percentile(0.5), (PercentileBound{0.0, 2.0}));
  // ceil(0.9 * 10) = 9th sample still in bucket 0; the 10th is the outlier.
  EXPECT_EQ(h.percentile(0.9), (PercentileBound{0.0, 2.0}));
  EXPECT_EQ(h.percentile(0.99), (PercentileBound{8.0, 10.0}));
  EXPECT_EQ(h.percentile(1.0), (PercentileBound{8.0, 10.0}));
}

TEST(Histogram, PercentileRejectsBadArguments) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.percentile(0.5), PreconditionError);  // empty histogram
  h.add(0.5);
  EXPECT_THROW(h.percentile(0.0), PreconditionError);  // q must be in (0, 1]
  EXPECT_THROW(h.percentile(1.5), PreconditionError);
}

TEST(LogHistogram, PowerOfTwoBuckets) {
  LogHistogram h;
  h.add(0);    // bucket 0 holds exactly {0}
  h.add(1);    // bucket 1: [1, 2)
  h.add(5);    // bucket 3: [4, 8)
  h.add(544);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 544u);
  EXPECT_DOUBLE_EQ(h.mean(), 550.0 / 4.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket_lower(0), 0u);
  EXPECT_EQ(h.bucket_upper(0), 1u);
  EXPECT_EQ(h.bucket_lower(10), 512u);
  EXPECT_EQ(h.bucket_upper(10), 1024u);
}

TEST(LogHistogram, PercentileBracketsNearestRank) {
  LogHistogram h;
  for (int i = 0; i < 99; ++i) h.add(20);  // bucket [16, 32)
  h.add(544);                              // bucket [512, 1024)
  EXPECT_EQ(h.percentile(0.5), (PercentileBound{16.0, 32.0}));
  EXPECT_EQ(h.percentile(0.99), (PercentileBound{16.0, 32.0}));
  EXPECT_EQ(h.percentile(1.0), (PercentileBound{512.0, 1024.0}));
  LogHistogram empty;
  EXPECT_THROW(empty.percentile(0.5), PreconditionError);
}

TEST(Counters, BumpAndGet) {
  Counters c;
  c.bump("x");
  c.bump("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(TextTable, AlignsAndGroups) {
  TextTable t{"name", "value"};
  t.add_row({"a", TextTable::grouped(1234567)});
  t.add_row({"bb", TextTable::num(3.14159, 2)});
  const auto s = t.str();
  EXPECT_NE(s.find("1,234,567"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, GroupedNegative) {
  EXPECT_EQ(TextTable::grouped(-1234), "-1,234");
  EXPECT_EQ(TextTable::grouped(0), "0");
  EXPECT_EQ(TextTable::grouped(999), "999");
}

TEST(Csv, EscapesSpecials) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("plain", "with,comma", "with\"quote");
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Csv, VariadicNumbers) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row("k", 42, 1.5);
  EXPECT_NE(os.str().find("k,42,"), std::string::npos);
}

}  // namespace
