/// The run-time manager (paper §5): forecast-driven rotation, software
/// fallback, gradual upgrade, replacement, cross-task sharing, monitoring.

#include <gtest/gtest.h>

#include "rispp/rt/manager.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::rt;
using rispp::isa::SiLibrary;

RtConfig fast_config() {
  RtConfig cfg;
  cfg.atom_containers = 4;
  cfg.clock_mhz = 100.0;
  return cfg;
}

class Manager : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
  std::size_t satd_ = lib_.index_of("SATD_4x4");
  std::size_t dct_ = lib_.index_of("DCT_4x4");
  std::size_t ht2_ = lib_.index_of("HT_2x2");
};

TEST_F(Manager, ExecutesInSoftwareBeforeAnyRotation) {
  RisppManager mgr(borrow(lib_), fast_config());
  const auto res = mgr.execute(satd_, 0);
  EXPECT_FALSE(res.hardware);
  EXPECT_EQ(res.cycles, 544u);
  EXPECT_EQ(mgr.counters().get("si_exec_sw"), 1u);
}

TEST_F(Manager, ForecastTriggersRotationsAndEventualHardware) {
  RisppManager mgr(borrow(lib_), fast_config());
  mgr.forecast(satd_, 256, 1.0, 0);
  EXPECT_GT(mgr.rotations_performed(), 0u);
  // Immediately after the forecast the atoms are still loading → software.
  EXPECT_FALSE(mgr.execute(satd_, 1).hardware);
  // Four Table-1 rotations at ≈69 MB/s and 100 MHz finish well within
  // 4 × 100k cycles.
  const Cycle later = 400000;
  const auto res = mgr.execute(satd_, later);
  EXPECT_TRUE(res.hardware);
  EXPECT_EQ(res.cycles, 24u);
}

TEST_F(Manager, GradualUpgradeThroughMolecules) {
  // "Rotation in Advance": as atoms complete one by one, the SI upgrades
  // from software through progressively faster Molecules (Fig 6 T4→T5).
  RtConfig cfg = fast_config();
  cfg.atom_containers = 6;
  RisppManager mgr(borrow(lib_), cfg);
  mgr.forecast(satd_, 256, 1.0, 0);

  std::vector<std::uint32_t> latencies;
  for (Cycle t = 0; t <= 800000; t += 20000)
    latencies.push_back(mgr.execute(satd_, t).cycles);
  // Latency must be non-increasing over time and end at a hardware value.
  for (std::size_t i = 1; i < latencies.size(); ++i)
    EXPECT_LE(latencies[i], latencies[i - 1]);
  EXPECT_EQ(latencies.front(), 544u);
  EXPECT_LE(latencies.back(), 24u);
  // With 6 containers the selector upgrades beyond the minimal molecule.
  EXPECT_LT(latencies.back(), 24u);
}

TEST_F(Manager, ReleaseFreesContainersForOtherSis) {
  RtConfig cfg = fast_config();
  cfg.atom_containers = 2;  // only room for one small SI's molecule
  RisppManager mgr(borrow(lib_), cfg);

  // HT_2x2 needs 1 container (Transform); DCT needs 3 — doesn't fit with 2.
  mgr.forecast(ht2_, 100, 1.0, 0);
  const Cycle t1 = 200000;
  EXPECT_TRUE(mgr.execute(ht2_, t1).hardware);

  // Releasing HT_2x2 and forecasting DCT still can't fit DCT (needs 3), but
  // releasing must not crash and HT_2x2 keeps working while its atom stays.
  mgr.forecast_release(ht2_, t1);
  EXPECT_TRUE(mgr.execute(ht2_, t1 + 1).hardware);  // atom still loaded
}

TEST_F(Manager, ReplacementEvictsReleasedSisAtoms) {
  RtConfig cfg = fast_config();
  cfg.atom_containers = 4;
  RisppManager mgr(borrow(lib_), cfg);

  mgr.forecast(satd_, 256, 1.0, 0);
  const Cycle warm = 500000;
  ASSERT_TRUE(mgr.execute(satd_, warm).hardware);

  // SATD no longer needed; DCT forecasted. The selector now targets DCT's
  // best 4-container configuration; SATD's unique atom gets replaced.
  mgr.forecast_release(satd_, warm);
  mgr.forecast(dct_, 1000, 1.0, warm);
  const Cycle warm2 = warm + 500000;
  const auto res = mgr.execute(dct_, warm2);
  EXPECT_TRUE(res.hardware);
  EXPECT_LT(res.cycles, 24u);  // 4 containers allow a better-than-minimal DCT
}

TEST_F(Manager, CrossTaskAtomSharing) {
  // Fig 6 T3: a task may execute on atoms whose containers belong to
  // another task.
  RisppManager mgr(borrow(lib_), fast_config());
  mgr.forecast(satd_, 256, 1.0, 0, /*task=*/0);
  const Cycle warm = 500000;
  const auto res = mgr.execute(satd_, warm, /*task=*/7);
  EXPECT_TRUE(res.hardware);
}

TEST_F(Manager, MonitoringLearnsActualExecutions) {
  RtConfig cfg = fast_config();
  cfg.learning_rate = 0.5;
  RisppManager mgr(borrow(lib_), cfg);

  mgr.forecast(satd_, 1000, 1.0, 0);  // compile-time guess: 1000
  for (int i = 0; i < 10; ++i) mgr.execute(satd_, 1000 + i);
  mgr.forecast_release(satd_, 2000);  // observed only 10

  const auto learned = mgr.learned_expectation(satd_);
  ASSERT_TRUE(learned.has_value());
  EXPECT_DOUBLE_EQ(*learned, 10.0);

  // The next forecast blends compile-time and learned values.
  mgr.forecast(satd_, 1000, 1.0, 3000);
  const auto demands = mgr.active_demands();
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_DOUBLE_EQ(demands.front().expected_executions, 0.5 * 10 + 0.5 * 1000);
}

TEST_F(Manager, EventTraceRecordsLifecycle) {
  RisppManager mgr(borrow(lib_), fast_config());
  mgr.forecast(ht2_, 10, 1.0, 0);
  mgr.execute(ht2_, 1);       // software (rotation in flight)
  mgr.execute(ht2_, 300000);  // hardware
  mgr.forecast_release(ht2_, 300001);

  bool saw_forecast = false, saw_rot_start = false, saw_rot_done = false,
       saw_sw = false, saw_hw = false, saw_release = false;
  for (const auto& e : mgr.events()) {
    switch (e.kind) {
      case RtEvent::Kind::Forecast: saw_forecast = true; break;
      case RtEvent::Kind::RotationStart: saw_rot_start = true; break;
      case RtEvent::Kind::RotationDone: saw_rot_done = true; break;
      case RtEvent::Kind::ExecuteSw: saw_sw = true; break;
      case RtEvent::Kind::ExecuteHw: saw_hw = true; break;
      case RtEvent::Kind::ForecastRelease: saw_release = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_forecast);
  EXPECT_TRUE(saw_rot_start);
  EXPECT_TRUE(saw_rot_done);
  EXPECT_TRUE(saw_sw);
  EXPECT_TRUE(saw_hw);
  EXPECT_TRUE(saw_release);
}

TEST_F(Manager, EventRecordingCanBeDisabled) {
  RtConfig cfg = fast_config();
  cfg.record_events = false;
  RisppManager mgr(borrow(lib_), cfg);
  mgr.forecast(satd_, 100, 1.0, 0);
  mgr.execute(satd_, 10);
  EXPECT_TRUE(mgr.events().empty());
  EXPECT_GT(mgr.counters().get("forecasts"), 0u);  // counters still work
}

TEST_F(Manager, RotationsSerializeOverThePort) {
  // Four needed atoms must complete one after another: the i-th completion
  // time is at least i × min bitstream duration.
  RisppManager mgr(borrow(lib_), fast_config());
  mgr.forecast(satd_, 256, 1.0, 0);
  std::vector<Cycle> completions;
  for (const auto& e : mgr.events())
    if (e.kind == RtEvent::Kind::RotationDone) completions.push_back(e.at);
  ASSERT_EQ(completions.size(), 4u);
  for (std::size_t i = 1; i < completions.size(); ++i)
    EXPECT_GT(completions[i], completions[i - 1]);
  // At ≈69.2 B/µs and 100 MHz, each Table-1 atom takes ≥ 83,000 cycles.
  EXPECT_GE(completions.front(), 83000u);
  EXPECT_GE(completions.back(), 4u * 83000u);
}

TEST_F(Manager, CostAwareReallocationSkipsUneconomicalRotations) {
  RtConfig cfg = fast_config();
  cfg.rotation_cost_factor = 1.0;
  RisppManager mgr(borrow(lib_), cfg);
  // Tiny demand: 3 expected SATD executions save 3·(544−24) = 1560 cycles,
  // far below the ~350k cycles of transfers → no rotation.
  mgr.forecast(satd_, 3, 1.0, 0);
  EXPECT_EQ(mgr.rotations_performed(), 0u);
  EXPECT_FALSE(mgr.execute(satd_, 400000).hardware);
  // Large demand pays for itself → rotations proceed.
  mgr.forecast(satd_, 5000, 1.0, 400000);
  EXPECT_EQ(mgr.rotations_performed(), 4u);
  EXPECT_TRUE(mgr.execute(satd_, 900000).hardware);
}

TEST_F(Manager, CostGateComparesAgainstCurrentConfiguration) {
  // Once the atoms are loaded, a re-forecast with a small expectation must
  // NOT tear them down (gain vs current config is zero → no rotations, and
  // the loaded molecule keeps serving).
  RtConfig cfg = fast_config();
  cfg.rotation_cost_factor = 1.0;
  RisppManager mgr(borrow(lib_), cfg);
  mgr.forecast(satd_, 5000, 1.0, 0);
  ASSERT_TRUE(mgr.execute(satd_, 500000).hardware);
  mgr.forecast_release(satd_, 500000);
  mgr.forecast(satd_, 5000, 1.0, 500001);  // lr blends 5000 with observed 1
  EXPECT_TRUE(mgr.execute(satd_, 500002).hardware);
}

TEST_F(Manager, StaleRotationCancellation) {
  // Forecast SATD (queues 4 transfers), then immediately switch the demand
  // to HT_4x4 before any-but-the-first transfer started: with cancellation
  // on, the queued stale transfers are dropped, their containers freed, and
  // the HT atoms start loading right away.
  RtConfig cfg = fast_config();
  cfg.cancel_stale_rotations = true;
  RisppManager mgr(borrow(lib_), cfg);
  const auto ht4 = lib_.index_of("HT_4x4");

  mgr.forecast(satd_, 1000, 1.0, 0);
  const auto queued = mgr.rotations_performed();
  EXPECT_EQ(queued, 4u);

  // At cycle 10 only the first transfer is in flight; the other three are
  // pending and become stale once SATD is released.
  mgr.forecast_release(satd_, 10);
  mgr.forecast(ht4, 1'000'000, 1.0, 10);
  EXPECT_GT(mgr.rotations_cancelled(), 0u);
  EXPECT_EQ(mgr.counters().get("rotations_cancelled"),
            mgr.rotations_cancelled());

  // HT_4x4 eventually runs in hardware despite the churn.
  const auto res = mgr.execute(ht4, 2'000'000);
  EXPECT_TRUE(res.hardware);

  // Event trace consistency: every recorded RotationDone corresponds to a
  // rotation that was not cancelled.
  std::uint64_t starts = 0, dones = 0, cancels = 0;
  for (const auto& e : mgr.events()) {
    if (e.kind == RtEvent::Kind::RotationStart) ++starts;
    if (e.kind == RtEvent::Kind::RotationDone) ++dones;
    if (e.kind == RtEvent::Kind::RotationCancelled) ++cancels;
  }
  EXPECT_EQ(cancels, mgr.rotations_cancelled());
  EXPECT_EQ(dones, mgr.rotations_performed());
  EXPECT_EQ(starts, dones + cancels);
}

TEST_F(Manager, CancellationRefundsRotationEnergy) {
  RtConfig cfg = fast_config();
  cfg.cancel_stale_rotations = true;
  RisppManager mgr(borrow(lib_), cfg);
  mgr.forecast(satd_, 1000, 1.0, 0);
  const double charged = mgr.energy().rotation_nj();
  mgr.forecast_release(satd_, 10);
  mgr.forecast(lib_.index_of("HT_2x2"), 1'000'000, 1.0, 10);
  // Some of the charged rotation energy was refunded.
  EXPECT_LT(mgr.energy().rotation_nj(), charged + 80000.0);
  EXPECT_GE(mgr.energy().rotation_nj(), 0.0);
}

TEST_F(Manager, InFlightTransferIsNeverCancelled) {
  RtConfig cfg = fast_config();
  cfg.atom_containers = 1;
  cfg.cancel_stale_rotations = true;
  RisppManager mgr(borrow(lib_), cfg);
  const auto ht2 = lib_.index_of("HT_2x2");
  mgr.forecast(ht2, 100, 1.0, 0);  // Transform transfer starts immediately
  EXPECT_EQ(mgr.rotations_performed(), 1u);
  // Release + new demand while the transfer is mid-flight: non-preemptive
  // port → no cancellation possible.
  mgr.forecast_release(ht2, 100);
  mgr.forecast(satd_, 1000, 1.0, 100);
  EXPECT_EQ(mgr.rotations_cancelled(), 0u);
}

TEST_F(Manager, LoadedSlicesMatchesRecomputeWalk) {
  // loaded_slices() is maintained incrementally (the seed walked every
  // container with a catalog lookup apiece, on every energy sample); the
  // walk stays the ground truth, so recompute it at every lifecycle stage.
  RtConfig cfg = fast_config();
  cfg.atom_containers = 6;
  RisppManager mgr(borrow(lib_), cfg);

  const auto recompute = [&] {
    std::uint64_t slices = 0;
    const auto& file = mgr.containers();
    for (unsigned i = 0; i < file.size(); ++i) {
      const auto& ac = file.at(i);
      const auto kind = ac.loading ? ac.loading : ac.atom;
      if (kind) slices += lib_.catalog().at(*kind).hardware.slices;
    }
    return slices;
  };

  EXPECT_EQ(mgr.loaded_slices(), recompute());  // fresh: nothing loaded
  EXPECT_EQ(mgr.loaded_slices(), 0u);

  mgr.forecast(satd_, 5000, 1.0, 0);  // transfers queued / in flight
  EXPECT_EQ(mgr.loaded_slices(), recompute());
  EXPECT_GT(mgr.loaded_slices(), 0u);

  const Cycle warm = 500000;
  ASSERT_TRUE(mgr.execute(satd_, warm).hardware);  // all promoted
  EXPECT_EQ(mgr.loaded_slices(), recompute());

  // Demand shift evicts SATD's excess atoms in favour of DCT.
  mgr.forecast_release(satd_, warm);
  mgr.forecast(dct_, 5000, 1.0, warm);
  EXPECT_EQ(mgr.loaded_slices(), recompute());

  const Cycle warm2 = warm + 600000;
  ASSERT_TRUE(mgr.execute(dct_, warm2).hardware);
  EXPECT_EQ(mgr.loaded_slices(), recompute());

  mgr.forecast_release(dct_, warm2);
  mgr.poll(warm2 + 1);
  EXPECT_EQ(mgr.loaded_slices(), recompute());
}

TEST_F(Manager, UsableAtomsMatchesAvailableRecompute) {
  // The execute hot path trusts the incrementally-maintained usable_atoms()
  // instead of recomputing available_atoms(now); right after a refresh the
  // two must be the same multiset, at every stage of the lifecycle.
  RtConfig cfg = fast_config();
  cfg.atom_containers = 6;
  RisppManager mgr(borrow(lib_), cfg);

  const auto check = [&](Cycle now) {
    // available_atoms() refreshes to `now`, then the incremental view must
    // agree with it exactly (Molecule has defaulted equality).
    const auto recomputed = mgr.available_atoms(now);
    EXPECT_TRUE(recomputed == mgr.containers().usable_atoms())
        << "incremental usable view diverged at cycle " << now;
  };

  check(0);
  mgr.forecast(satd_, 5000, 1.0, 0);
  // Sample across the transfer completions (one lands every ~90k cycles).
  for (Cycle t = 0; t <= 600000; t += 30000) check(t);
  mgr.forecast_release(satd_, 600001);
  mgr.forecast(dct_, 5000, 1.0, 600001);
  for (Cycle t = 600002; t <= 1300000; t += 30000) check(t);
}

TEST_F(Manager, EventCompactionIsInvisibleToReaders) {
  // A cancelled rotation tombstones its pre-recorded RotationDone event
  // instead of the seed's O(n) mid-vector erase; compaction happens lazily
  // inside events(), remapping the surviving pending-done indices. Reading
  // mid-stream — which compacts while later cancellations still reference
  // events recorded after the holes — must yield exactly the same final
  // trace as never reading until the end.
  RtConfig cfg = fast_config();
  cfg.cancel_stale_rotations = true;
  const auto ht4 = lib_.index_of("HT_4x4");

  RisppManager observed(borrow(lib_), cfg);  // events() read between waves
  RisppManager control(borrow(lib_), cfg);   // events() read once at the end
  const auto drive_wave1 = [&](RisppManager& mgr) {
    mgr.forecast(satd_, 1000, 1.0, 0);
    mgr.forecast_release(satd_, 10);  // strands 3 queued SATD transfers
    mgr.forecast(ht4, 1'000'000, 1.0, 10);
  };
  const auto drive_wave2 = [&](RisppManager& mgr) {
    // The port is still busy with the first SATD transfer, so HT_4x4's
    // bookings are all queued — releasing it strands them in turn.
    mgr.forecast_release(ht4, 20);
    mgr.forecast(satd_, 1000, 1.0, 20);
    (void)mgr.execute(satd_, 900000);
    mgr.poll(2'000'000);
  };

  drive_wave1(observed);
  drive_wave1(control);
  const auto wave1_cancels = observed.rotations_cancelled();
  ASSERT_GT(wave1_cancels, 0u);
  // Mid-stream read: compacts wave 1's tombstones while the pending dones
  // booked after them (HT_4x4's) still need their indices remapped for
  // wave 2's cancellations to hit the right events.
  const auto mid_size = observed.events().size();
  EXPECT_GT(mid_size, 0u);

  drive_wave2(observed);
  drive_wave2(control);
  ASSERT_GT(observed.rotations_cancelled(), wave1_cancels);

  const auto& a = observed.events();
  const auto& b = control.events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].si_index, b[i].si_index) << "event " << i;
    EXPECT_EQ(a[i].atom_kind, b[i].atom_kind) << "event " << i;
    EXPECT_EQ(a[i].container, b[i].container) << "event " << i;
    EXPECT_EQ(a[i].task, b[i].task) << "event " << i;
    EXPECT_EQ(a[i].cycles, b[i].cycles) << "event " << i;
  }

  // The structural invariant the tombstones must preserve: every surviving
  // RotationStart pairs with a completion, every cancellation dropped one.
  std::uint64_t starts = 0, dones = 0, cancels = 0;
  for (const auto& e : a) {
    if (e.kind == RtEvent::Kind::RotationStart) ++starts;
    if (e.kind == RtEvent::Kind::RotationDone) ++dones;
    if (e.kind == RtEvent::Kind::RotationCancelled) ++cancels;
  }
  EXPECT_EQ(cancels, observed.rotations_cancelled());
  EXPECT_EQ(dones, observed.rotations_performed());
  EXPECT_EQ(starts, dones + cancels);
}

TEST_F(Manager, ForecastValidation) {
  RisppManager mgr(borrow(lib_), fast_config());
  EXPECT_THROW(mgr.forecast(99, 10, 1.0, 0), rispp::util::PreconditionError);
  EXPECT_THROW(mgr.forecast(satd_, -1.0, 1.0, 0),
               rispp::util::PreconditionError);
  EXPECT_THROW(mgr.forecast(satd_, 10, 0.0, 0),
               rispp::util::PreconditionError);
  EXPECT_THROW(mgr.execute(99, 0), rispp::util::PreconditionError);
  // Releasing a never-forecasted SI is a harmless no-op.
  EXPECT_NO_THROW(mgr.forecast_release(dct_, 0));
}

}  // namespace
