/// PhasedWorkload: §8 config parsing with line-numbered diagnostics, the
/// byte-determinism contract, phase-boundary exactness, and the checked-in
/// golden trace the CI workload smoke also pins.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rispp/isa/si_library.hpp"
#include "rispp/sim/trace_io.hpp"
#include "rispp/workload/phased.hpp"

namespace {

using rispp::isa::SiLibrary;
using rispp::workload::parse_phased_config;
using rispp::workload::PhasedConfig;
using rispp::workload::PhasedStats;
using rispp::workload::PhasedWorkload;
using rispp::workload::WorkloadConfigError;
using rispp::workload::write_phased_config;

const char* const kConfig = R"(workload demo
  tasks 5
  seed 11
  task_chooser zipfian 0.8

phase warm
  events 30
  mix SATD_4x4=2 DCT_4x4
  compute 2000 5000

phase burst
  events 50
  mix HT_4x4 HT_2x2
  si_chooser zipfian 0.9
  task_chooser hotset 0.4 0.9
  si_count 3
  rate 1 4
  burst period=10 amplitude=0.3
  forecast 0.7

phase tail
  events 10
  mix DCT_4x4
  si_chooser uniform
  compute 4000
  rate 0.5
  forecast off
)";

/// Expects `text` to fail parsing, returning the error for inspection.
WorkloadConfigError parse_error(const std::string& text) {
  try {
    (void)parse_phased_config(text);
  } catch (const WorkloadConfigError& e) {
    return e;
  }
  ADD_FAILURE() << "config parsed unexpectedly:\n" << text;
  return WorkloadConfigError(0, "no error");
}

std::string serialize(const PhasedWorkload& w) {
  std::ostringstream out;
  rispp::sim::write_tasks(out, w.generate(), w.library());
  return out.str();
}

TEST(PhasedConfig, ParsesTheFullGrammar) {
  const auto cfg = parse_phased_config(kConfig);
  EXPECT_EQ(cfg.name, "demo");
  EXPECT_EQ(cfg.tasks, 5u);
  EXPECT_EQ(cfg.seed, 11u);
  EXPECT_EQ(cfg.task_chooser.describe(), "zipfian 0.8");
  ASSERT_EQ(cfg.phases.size(), 3u);

  const auto& warm = cfg.phases[0];
  EXPECT_EQ(warm.name, "warm");
  EXPECT_EQ(warm.events, 30u);
  ASSERT_EQ(warm.mix.size(), 2u);
  EXPECT_EQ(warm.mix[0].first, "SATD_4x4");
  EXPECT_DOUBLE_EQ(warm.mix[0].second, 2.0);
  EXPECT_DOUBLE_EQ(warm.mix[1].second, 1.0);  // weight defaults to 1
  EXPECT_EQ(warm.compute_min, 2000u);
  EXPECT_EQ(warm.compute_max, 5000u);
  EXPECT_TRUE(warm.forecast);

  const auto& burst = cfg.phases[1];
  ASSERT_TRUE(burst.task_chooser.has_value());
  EXPECT_EQ(burst.si_count, 3u);
  EXPECT_DOUBLE_EQ(burst.rate_begin, 1.0);
  EXPECT_DOUBLE_EQ(burst.rate_end, 4.0);
  EXPECT_EQ(burst.burst_period, 10u);
  EXPECT_DOUBLE_EQ(burst.burst_amplitude, 0.3);
  EXPECT_DOUBLE_EQ(burst.forecast_probability, 0.7);

  const auto& tail = cfg.phases[2];
  EXPECT_EQ(tail.compute_min, 4000u);
  EXPECT_EQ(tail.compute_max, 4000u);  // MAX defaults to MIN
  EXPECT_FALSE(tail.forecast);
}

TEST(PhasedConfig, WriteParseRoundTripIsStable) {
  const auto cfg = parse_phased_config(kConfig);
  std::ostringstream first;
  write_phased_config(first, cfg);
  const auto reparsed = parse_phased_config(first.str());
  std::ostringstream second;
  write_phased_config(second, reparsed);
  EXPECT_EQ(first.str(), second.str());
}

TEST(PhasedConfig, ErrorsCarryTheOffendingLine) {
  // Line numbers are 1-based and point at the directive that failed.
  EXPECT_EQ(parse_error("workload x\n  frobnicate 3\n").line(), 2u);
  EXPECT_EQ(parse_error("phase p\n  events 5\n  mix A\n  warble\n").line(),
            4u);
  EXPECT_EQ(parse_error("workload a\nworkload b\n").line(), 2u);
}

TEST(PhasedConfig, RejectsMalformedDirectives) {
  // Unknown directives name themselves in the message.
  EXPECT_NE(std::string(parse_error("workload x\n  frobnicate 3\n").what())
                .find("frobnicate"),
            std::string::npos);
  (void)parse_error("phase p\n  events 0\n  mix A\n");     // zero events
  (void)parse_error("phase p\n  events 5\n");              // missing mix
  (void)parse_error("phase p\n  events 5\n  mix A A\n");   // duplicate mix
  (void)parse_error("phase p\n  events 5\n  mix A=0\n");   // zero weight
  (void)parse_error("phase p\n  events 5\n  mix A\n  si_chooser zipfian 1.5\n");
  (void)parse_error("phase p\n  events 5\n  mix A\n  si_chooser sideways\n");
  (void)parse_error(
      "phase p\n  events 5\n  mix A\n  task_chooser weighted\n");
  (void)parse_error("phase p\n  events 5\n  mix A\n  compute 0\n");
  (void)parse_error("phase p\n  events 5\n  mix A\n  compute 10 5\n");
  (void)parse_error("phase p\n  events 5\n  mix A\n  rate 0\n");
  (void)parse_error(
      "phase p\n  events 5\n  mix A\n  burst period=0 amplitude=0.5\n");
  (void)parse_error(
      "phase p\n  events 5\n  mix A\n  burst period=8 amplitude=1.5\n");
  (void)parse_error("phase p\n  events 5\n  mix A\n  forecast 0\n");
  (void)parse_error("workload x\n  tasks 0\n");
  (void)parse_error("workload x\n  tasks nope\n");
  (void)parse_error("");  // no phases at all
}

TEST(PhasedWorkload, ConstructorRejectsUnknownSis) {
  const auto lib = SiLibrary::h264();
  try {
    (void)PhasedWorkload::from_string(
        "phase p\n  events 5\n  mix NO_SUCH_SI\n", borrow(lib));
    FAIL() << "unknown SI accepted";
  } catch (const WorkloadConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("NO_SUCH_SI"), std::string::npos);
  }
}

TEST(PhasedWorkload, FromFileReportsMissingFiles) {
  const auto lib = SiLibrary::h264();
  EXPECT_THROW((void)PhasedWorkload::from_file("/no/such/file.workload",
                                               borrow(lib)),
               WorkloadConfigError);
}

TEST(PhasedWorkload, TwoInstancesGenerateByteIdenticalTraces) {
  const auto lib = SiLibrary::h264();
  const auto a = PhasedWorkload::from_string(kConfig, borrow(lib));
  const auto b = PhasedWorkload::from_string(kConfig, borrow(lib));
  const auto text = serialize(a);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text, serialize(b));
  // generate() is pure: a second call on the same instance matches too.
  EXPECT_EQ(text, serialize(a));
}

TEST(PhasedWorkload, SeedOverrideChangesTheTrace) {
  const auto lib = SiLibrary::h264();
  const auto base = PhasedWorkload::from_string(kConfig, borrow(lib));
  const auto reseeded =
      PhasedWorkload::from_string(kConfig, borrow(lib), /*seed=*/999);
  EXPECT_EQ(reseeded.config().seed, 999u);
  EXPECT_NE(serialize(base), serialize(reseeded));
}

TEST(PhasedWorkloadProperty, PhaseBoundariesLandOnExactEventCounts) {
  const auto lib = SiLibrary::h264();
  const auto workload = PhasedWorkload::from_string(kConfig, borrow(lib));
  PhasedStats stats;
  const auto tasks = workload.generate(&stats);
  const auto& cfg = workload.config();
  ASSERT_EQ(tasks.size(), cfg.tasks);
  ASSERT_EQ(stats.phases.size(), cfg.phases.size());

  // Per-phase stats hit the configured event counts exactly, and SI
  // invocations are exactly events * si_count — the generator never drops
  // or duplicates an event.
  std::uint64_t want_events = 0, want_invocations = 0;
  for (std::size_t i = 0; i < cfg.phases.size(); ++i) {
    EXPECT_EQ(stats.phases[i].events, cfg.phases[i].events) << "phase " << i;
    EXPECT_EQ(stats.phases[i].si_invocations,
              cfg.phases[i].events * cfg.phases[i].si_count)
        << "phase " << i;
    // Every (task, SI) pair forecast in a phase is released at its end.
    EXPECT_EQ(stats.phases[i].releases, stats.phases[i].forecasts)
        << "phase " << i;
    want_events += cfg.phases[i].events;
    want_invocations += cfg.phases[i].events * cfg.phases[i].si_count;
  }
  EXPECT_EQ(stats.events, want_events);
  EXPECT_EQ(stats.si_invocations, want_invocations);

  // The traces agree with the stats: burst events never merge, so the Si op
  // count across all tasks is exactly the total event count, and op counts
  // sum to the invocation total.
  std::uint64_t si_ops = 0, invocations = 0, forecasts = 0, releases = 0;
  for (const auto& task : tasks) {
    for (const auto& op : task.trace) {
      using Kind = rispp::sim::TraceOp::Kind;
      if (op.kind == Kind::Si) {
        ++si_ops;
        invocations += op.count;
      } else if (op.kind == Kind::Forecast) {
        ++forecasts;
      } else if (op.kind == Kind::Release) {
        ++releases;
      }
    }
  }
  EXPECT_EQ(si_ops, want_events);
  EXPECT_EQ(invocations, want_invocations);
  EXPECT_EQ(forecasts, stats.forecasts);
  EXPECT_EQ(releases, stats.releases);

  // events_per_task partitions the event total.
  ASSERT_EQ(stats.events_per_task.size(), cfg.tasks);
  std::uint64_t across_tasks = 0;
  for (const auto n : stats.events_per_task) across_tasks += n;
  EXPECT_EQ(across_tasks, want_events);
}

TEST(PhasedWorkload, GeneratedTracesRoundTripThroughTraceIo) {
  const auto lib = SiLibrary::h264();
  const auto workload = PhasedWorkload::from_string(kConfig, borrow(lib));
  const auto text = serialize(workload);
  const auto reparsed = rispp::sim::parse_tasks(text, lib);
  std::ostringstream again;
  rispp::sim::write_tasks(again, reparsed, lib);
  EXPECT_EQ(text, again.str());
}

TEST(PhasedWorkloadGolden, SmallWorkloadTraceIsPinned) {
  // The same pairing the CI workload smoke checks: the fixture config must
  // keep producing tests/data/phased_golden.trace byte for byte. If a
  // deliberate generator change lands, regenerate the golden with
  //   rispp_workload generate --config=tests/data/phased_small.workload
  const auto lib = SiLibrary::h264();
  const auto workload = PhasedWorkload::from_file(
      RISPP_TEST_DATA_DIR "/phased_small.workload", borrow(lib));
  std::ifstream golden(RISPP_TEST_DATA_DIR "/phased_golden.trace",
                       std::ios::binary);
  ASSERT_TRUE(golden.good());
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(serialize(workload), want.str());
}

}  // namespace
