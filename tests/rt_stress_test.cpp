/// Randomized stress testing of the run-time system: long sequences of
/// forecasts, releases, executions and polls at random times, against both
/// SI libraries and all victim policies, with the platform's structural
/// invariants checked after every step.
///
/// Invariants:
///  I1  committed atoms never exceed the container count,
///  I2  available ⊆ committed (an atom must be committed to be usable),
///  I3  execute() returns hardware only if a molecule is actually supported
///      by the available atoms, and the fastest such molecule,
///  I4  latencies are either the software molecule's or one of the
///      hardware molecules' — never anything else,
///  I5  the rotation count only grows and each rotation's completion lies
///      strictly after its start (single non-preemptive port).

#include <gtest/gtest.h>

#include "rispp/rt/manager.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::rt;
using rispp::isa::SiLibrary;

struct StressCase {
  const char* library;
  unsigned containers;
  VictimPolicy policy;
  std::uint64_t seed;
};

class RtStress : public ::testing::TestWithParam<StressCase> {};

SiLibrary make_library(const std::string& name) {
  if (name == "h264") return SiLibrary::h264();
  if (name == "frame") return SiLibrary::h264_frame();
  return SiLibrary::h264_with_sad();
}

TEST_P(RtStress, InvariantsHoldUnderRandomOperation) {
  const auto& param = GetParam();
  const auto lib = make_library(param.library);
  RtConfig cfg;
  cfg.atom_containers = param.containers;
  cfg.replacement_policy = to_policy_name(param.policy);
  cfg.record_events = true;
  RisppManager mgr(borrow(lib), cfg);
  rispp::util::Xoshiro256 rng(param.seed);

  Cycle now = 0;
  for (int step = 0; step < 2000; ++step) {
    now += rng.below(20000);
    const auto si = static_cast<std::size_t>(rng.below(lib.size()));
    const int task = static_cast<int>(rng.below(3));
    const auto dice = rng.below(10);
    if (dice < 2) {
      mgr.forecast(si, 1.0 + static_cast<double>(rng.below(1000)),
                   0.1 + 0.9 * rng.uniform01(), now, task);
    } else if (dice < 3) {
      mgr.forecast_release(si, now, task);
    } else if (dice < 4) {
      mgr.poll(now);
    } else {
      const auto res = mgr.execute(si, now, task);
      const auto& instr = lib.at(si);
      // I4: the latency is a real molecule latency.
      if (res.hardware) {
        ASSERT_NE(res.molecule, nullptr);
        EXPECT_EQ(res.cycles, res.molecule->cycles);
        // I3: supported and fastest among supported.
        const auto avail = mgr.available_atoms(now);
        EXPECT_TRUE(lib.catalog().satisfied_by(res.molecule->atoms, avail));
        for (const auto& o : instr.options()) {
          if (lib.catalog().satisfied_by(o.atoms, avail)) {
            EXPECT_GE(o.cycles, res.cycles);
          }
        }
      } else {
        EXPECT_EQ(res.molecule, nullptr);
        EXPECT_EQ(res.cycles, instr.software_cycles());
      }
      now += res.cycles;
    }

    // I1: the containers can never hold more atoms than exist.
    const auto committed = mgr.committed_atoms();
    EXPECT_LE(committed.determinant(), param.containers);
    // I2: available ⊆ committed.
    EXPECT_TRUE(mgr.available_atoms(now).leq(committed));
  }

  // I5: rotation events are consistent.
  std::uint64_t starts = 0, dones = 0;
  Cycle last_done = 0;
  for (const auto& e : mgr.events()) {
    if (e.kind == RtEvent::Kind::RotationStart) ++starts;
    if (e.kind == RtEvent::Kind::RotationDone) {
      ++dones;
      EXPECT_GE(e.at, last_done);  // port serializes transfers
      last_done = e.at;
    }
  }
  EXPECT_EQ(starts, dones);
  EXPECT_EQ(starts, mgr.rotations_performed());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtStress,
    ::testing::Values(
        StressCase{"h264", 1, VictimPolicy::LruExcess, 1},
        StressCase{"h264", 2, VictimPolicy::LruExcess, 2},
        StressCase{"h264", 4, VictimPolicy::LruExcess, 3},
        StressCase{"h264", 4, VictimPolicy::MruExcess, 4},
        StressCase{"h264", 4, VictimPolicy::RoundRobinExcess, 5},
        StressCase{"h264", 16, VictimPolicy::LruExcess, 6},
        StressCase{"sad", 4, VictimPolicy::LruExcess, 7},
        StressCase{"sad", 6, VictimPolicy::MruExcess, 8},
        StressCase{"frame", 4, VictimPolicy::LruExcess, 9},
        StressCase{"frame", 8, VictimPolicy::LruExcess, 10},
        StressCase{"frame", 12, VictimPolicy::RoundRobinExcess, 11},
        StressCase{"frame", 24, VictimPolicy::LruExcess, 12}));

TEST(SimStress, RandomTracesAreDeterministicAndConserveWork) {
  // Random multi-task traces: the simulator must (a) be bit-deterministic,
  // (b) conserve per-task busy cycles (sum == total on a single core), and
  // (c) report SI invocation counts matching the trace.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto lib = SiLibrary::h264();
    auto build = [&] {
      rispp::util::Xoshiro256 rng(seed);
      rispp::sim::SimConfig cfg;
      cfg.rt.atom_containers = 2 + rng.below(6);
      cfg.rt.record_events = false;
      cfg.quantum = 1000 + rng.below(50000);
      rispp::sim::Simulator sim(borrow(lib), cfg);
      const int tasks = 1 + static_cast<int>(rng.below(3));
      for (int t = 0; t < tasks; ++t) {
        rispp::sim::Trace trace;
        const int ops = 10 + static_cast<int>(rng.below(40));
        for (int o = 0; o < ops; ++o) {
          const auto si = rng.below(lib.size());
          switch (rng.below(4)) {
            case 0: trace.push_back(rispp::sim::TraceOp::compute(1 + rng.below(30000))); break;
            case 1: trace.push_back(rispp::sim::TraceOp::si(si, 1 + rng.below(50))); break;
            case 2: trace.push_back(rispp::sim::TraceOp::forecast(si, 1.0 + static_cast<double>(rng.below(500)))); break;
            case 3: trace.push_back(rispp::sim::TraceOp::release(si)); break;
          }
        }
        sim.add_task({"t" + std::to_string(t), std::move(trace)});
      }
      return sim.run();
    };
    const auto a = build();
    const auto b = build();
    EXPECT_EQ(a.total_cycles, b.total_cycles) << "seed " << seed;
    EXPECT_EQ(a.rotations, b.rotations) << "seed " << seed;

    std::uint64_t busy = 0;
    for (const auto& [name, cycles] : a.task_cycles) busy += cycles;
    EXPECT_EQ(busy, a.total_cycles) << "seed " << seed;

    for (const auto& [name, st] : a.per_si)
      EXPECT_EQ(st.invocations, st.hw_invocations + st.sw_invocations);
  }
}

}  // namespace
