#include <gtest/gtest.h>

#include "rispp/rt/container.hpp"
#include "rispp/rt/policy.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::rt;
using rispp::isa::AtomCatalog;
using rispp::util::PreconditionError;

class Containers : public ::testing::Test {
 protected:
  AtomCatalog cat_ = AtomCatalog::h264();
  std::size_t quadsub_ = cat_.index_of("QuadSub");
  std::size_t pack_ = cat_.index_of("Pack");
  std::size_t transform_ = cat_.index_of("Transform");
};

TEST_F(Containers, StartsEmpty) {
  ContainerFile cf(4, cat_);
  EXPECT_EQ(cf.size(), 4u);
  EXPECT_TRUE(cf.available_atoms(0).is_zero());
  EXPECT_TRUE(cf.committed_atoms().is_zero());
}

TEST_F(Containers, RotationBecomesAvailableAtReadyTime) {
  ContainerFile cf(2, cat_);
  cf.start_rotation(0, quadsub_, /*ready_at=*/100, /*owner=*/1);
  EXPECT_TRUE(cf.available_atoms(50).is_zero());   // still transferring
  EXPECT_EQ(cf.committed_atoms()[quadsub_], 1u);   // but committed
  EXPECT_EQ(cf.available_atoms(100)[quadsub_], 1u);
  cf.refresh(100);
  EXPECT_EQ(cf.at(0).atom, quadsub_);
  EXPECT_FALSE(cf.at(0).loading.has_value());
  EXPECT_EQ(cf.at(0).owner_task, 1);
}

TEST_F(Containers, RotationDestroysOldContentImmediately) {
  ContainerFile cf(1, cat_);
  cf.start_rotation(0, quadsub_, 10, kNoTask);
  cf.refresh(10);
  EXPECT_EQ(cf.available_atoms(10)[quadsub_], 1u);
  // Re-rotate to Pack: QuadSub unusable from the moment the rotation starts.
  cf.start_rotation(0, pack_, 200, kNoTask);
  EXPECT_TRUE(cf.available_atoms(50).is_zero());
  EXPECT_EQ(cf.committed_atoms()[pack_], 1u);
  EXPECT_EQ(cf.committed_atoms()[quadsub_], 0u);
}

TEST_F(Containers, StaticAtomsCannotBeRotated) {
  ContainerFile cf(1, cat_);
  EXPECT_THROW(cf.start_rotation(0, cat_.index_of("Load"), 10, kNoTask),
               PreconditionError);
}

TEST_F(Containers, VictimPrefersEmpty) {
  ContainerFile cf(3, cat_);
  cf.start_rotation(0, quadsub_, 10, kNoTask);
  cf.refresh(10);
  const auto target = cat_.zero();
  const auto victim = cf.choose_victim(target, 20);
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, 0u);  // containers 1 and 2 are empty
}

TEST_F(Containers, VictimIsLruExcessContainer) {
  ContainerFile cf(2, cat_);
  cf.start_rotation(0, quadsub_, 10, kNoTask);
  cf.start_rotation(1, pack_, 20, kNoTask);
  cf.refresh(20);
  // Touch Pack recently; QuadSub is stale.
  rispp::atom::Molecule used(cat_.size());
  used.set(pack_, 1);
  cf.touch(used, 100);
  // Target wants neither → both in excess; LRU = container 0 (QuadSub).
  const auto victim = cf.choose_victim(cat_.zero(), 200);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);
}

TEST_F(Containers, NeededContainersAreNotVictims) {
  ContainerFile cf(2, cat_);
  cf.start_rotation(0, quadsub_, 10, kNoTask);
  cf.start_rotation(1, pack_, 20, kNoTask);
  cf.refresh(20);
  // Target needs exactly these two atoms → no victim available.
  rispp::atom::Molecule target(cat_.size());
  target.set(quadsub_, 1);
  target.set(pack_, 1);
  EXPECT_FALSE(cf.choose_victim(target, 100).has_value());
  // Target needs only Pack → QuadSub's container is expendable.
  rispp::atom::Molecule target2(cat_.size());
  target2.set(pack_, 1);
  const auto victim = cf.choose_victim(target2, 100);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);
}

TEST_F(Containers, BusyContainerIsNotVictim) {
  ContainerFile cf(1, cat_);
  cf.start_rotation(0, quadsub_, 1000, kNoTask);
  // At cycle 10 the transfer is still in flight — not preemptible.
  EXPECT_FALSE(cf.choose_victim(cat_.zero(), 10).has_value());
  // After completion it becomes a normal (excess) victim.
  cf.refresh(1000);
  EXPECT_TRUE(cf.choose_victim(cat_.zero(), 1000).has_value());
}

TEST_F(Containers, AggregationCountsInstances) {
  ContainerFile cf(3, cat_);
  cf.start_rotation(0, transform_, 10, kNoTask);
  cf.start_rotation(1, transform_, 20, kNoTask);
  cf.start_rotation(2, quadsub_, 30, kNoTask);
  cf.refresh(30);
  const auto avail = cf.available_atoms(30);
  EXPECT_EQ(avail[transform_], 2u);
  EXPECT_EQ(avail[quadsub_], 1u);
  EXPECT_EQ(avail.determinant(), 3u);
}

TEST_F(Containers, RoundRobinVictimRotatesThroughContainers) {
  // Regression: the seed picked the lowest-id expendable container on every
  // eviction ("round-robin" in name only). The per-file cursor must cycle.
  ContainerFile cf(3, cat_);
  cf.start_rotation(0, transform_, 10, kNoTask);
  cf.start_rotation(1, transform_, 20, kNoTask);
  cf.start_rotation(2, transform_, 30, kNoTask);
  cf.refresh(30);
  const auto target = cat_.zero();  // everything is excess
  const auto v0 = cf.choose_victim(target, 100, VictimPolicy::RoundRobinExcess);
  const auto v1 = cf.choose_victim(target, 100, VictimPolicy::RoundRobinExcess);
  const auto v2 = cf.choose_victim(target, 100, VictimPolicy::RoundRobinExcess);
  const auto v3 = cf.choose_victim(target, 100, VictimPolicy::RoundRobinExcess);
  ASSERT_TRUE(v0 && v1 && v2 && v3);
  EXPECT_EQ(*v0, 0u);
  EXPECT_EQ(*v1, 1u);
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(*v3, 0u);  // wrapped
}

TEST_F(Containers, RoundRobinPolicyObjectRotatesToo) {
  ContainerFile cf(3, cat_);
  cf.start_rotation(0, transform_, 10, kNoTask);
  cf.start_rotation(1, transform_, 20, kNoTask);
  cf.start_rotation(2, transform_, 30, kNoTask);
  cf.refresh(30);
  RoundRobinReplacement rr;
  const auto target = cat_.zero();
  const auto v0 = cf.choose_victim(target, 100, rr);
  const auto v1 = cf.choose_victim(target, 100, rr);
  const auto v2 = cf.choose_victim(target, 100, rr);
  const auto v3 = cf.choose_victim(target, 100, rr);
  ASSERT_TRUE(v0 && v1 && v2 && v3);
  EXPECT_EQ(*v0, 0u);
  EXPECT_EQ(*v1, 1u);
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(*v3, 0u);
}

TEST_F(Containers, TouchMarksLeastRecentlyUsedInstanceFirst) {
  // Three Transform instances, each touch uses one: the marking must cycle
  // through the instances (LRU order) instead of re-marking container 0.
  ContainerFile cf(3, cat_);
  cf.start_rotation(0, transform_, 10, kNoTask);
  cf.start_rotation(1, transform_, 20, kNoTask);
  cf.start_rotation(2, transform_, 30, kNoTask);
  cf.refresh(30);
  rispp::atom::Molecule one(cat_.size());
  one.set(transform_, 1);
  cf.touch(one, 100);  // all timestamps equal → lowest id marked
  EXPECT_EQ(cf.at(0).last_used, 100u);
  cf.touch(one, 200);  // containers 1 and 2 are older than 0
  EXPECT_EQ(cf.at(1).last_used, 200u);
  cf.touch(one, 300);
  EXPECT_EQ(cf.at(2).last_used, 300u);
  cf.touch(one, 400);  // back to container 0, now the stalest
  EXPECT_EQ(cf.at(0).last_used, 400u);
  EXPECT_EQ(cf.at(1).last_used, 200u);
  EXPECT_EQ(cf.at(2).last_used, 300u);
}

TEST_F(Containers, CommittedAtomsStayConsistentAcrossRotations) {
  // committed_atoms() is maintained incrementally; pin it against the
  // definition (one count per container's loading-or-loaded kind).
  ContainerFile cf(3, cat_);
  EXPECT_TRUE(cf.committed_atoms().is_zero());
  cf.start_rotation(0, transform_, 10, kNoTask);
  cf.start_rotation(1, quadsub_, 20, kNoTask);
  EXPECT_EQ(cf.committed_atoms()[transform_], 1u);
  EXPECT_EQ(cf.committed_atoms()[quadsub_], 1u);
  cf.refresh(20);  // promotion must not change committed content
  EXPECT_EQ(cf.committed_atoms()[transform_], 1u);
  EXPECT_EQ(cf.committed_atoms()[quadsub_], 1u);
  cf.start_rotation(0, pack_, 50, kNoTask);  // replaces Transform
  EXPECT_EQ(cf.committed_atoms()[transform_], 0u);
  EXPECT_EQ(cf.committed_atoms()[pack_], 1u);
  cf.start_rotation(2, transform_, 60, kNoTask);
  cf.abort_rotation(2);  // cancelled before starting → empty container
  EXPECT_EQ(cf.committed_atoms()[transform_], 0u);
  EXPECT_EQ(cf.committed_atoms().determinant(), 2u);
}

TEST_F(Containers, Preconditions) {
  EXPECT_THROW(ContainerFile(0, cat_), PreconditionError);
  ContainerFile cf(1, cat_);
  EXPECT_THROW(cf.start_rotation(5, quadsub_, 10, kNoTask), PreconditionError);
  EXPECT_THROW(cf.start_rotation(0, 99, 10, kNoTask), PreconditionError);
  EXPECT_THROW((void)cf.at(7), PreconditionError);
}

}  // namespace
