/// Functional correctness of the Atom-composed kernels: every SI-level
/// function must match the naive matrix-form reference bit-exactly, and the
/// Atom data paths must behave like the synthesized units of Fig 8/9.

#include <gtest/gtest.h>

#include "rispp/h264/kernels.hpp"
#include "rispp/h264/reference.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::h264;

Block4x4 random_block(rispp::util::Xoshiro256& rng, int lo = -255,
                      int hi = 255) {
  Block4x4 b{};
  for (auto& v : b) v = static_cast<std::int32_t>(rng.range(lo, hi));
  return b;
}

TEST(Atoms, QuadSubIsLaneWiseSubtraction) {
  const Quad a{10, -5, 0, 255};
  const Quad b{3, 5, -7, 255};
  EXPECT_EQ(atom_quadsub(a, b), (Quad{7, -10, 7, 0}));
}

TEST(Atoms, PackUnpackRoundTrip) {
  rispp::util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto lsb = static_cast<std::int16_t>(rng.range(-32768, 32767));
    const auto msb = static_cast<std::int16_t>(rng.range(-32768, 32767));
    std::int16_t l2, m2;
    atom_unpack(atom_pack(lsb, msb), l2, m2);
    EXPECT_EQ(l2, lsb);
    EXPECT_EQ(m2, msb);
  }
}

TEST(Atoms, TransformDctButterflyMatchesCoreMatrix) {
  // One row through the DCT butterfly equals kCore · x.
  const Quad x{10, 20, 30, 40};
  const auto y = atom_transform(x, TransformMode::Dct);
  EXPECT_EQ(y[0], 10 + 20 + 30 + 40);
  EXPECT_EQ(y[1], 2 * 10 + 20 - 30 - 2 * 40);
  EXPECT_EQ(y[2], 10 - 20 - 30 + 40);
  EXPECT_EQ(y[3], 10 - 2 * 20 + 2 * 30 - 40);
}

TEST(Atoms, TransformHadamardButterfly) {
  const Quad x{1, 2, 3, 4};
  const auto y = atom_transform(x, TransformMode::Hadamard);
  EXPECT_EQ(y[0], 10);
  EXPECT_EQ(y[1], 1 + 2 - 3 - 4);
  EXPECT_EQ(y[2], 1 - 2 - 3 + 4);
  EXPECT_EQ(y[3], 1 - 2 + 3 - 4);
}

TEST(Atoms, SatdAccumulatesAbsoluteValues) {
  EXPECT_EQ(atom_satd({-1, 2, -3, 4}), 10);
  EXPECT_EQ(atom_satd({0, 0, 0, 0}), 0);
}

class KernelVsReference : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  rispp::util::Xoshiro256 rng_{GetParam()};
};

TEST_P(KernelVsReference, SatdMatches) {
  const auto cur = random_block(rng_, 0, 255);
  const auto ref = random_block(rng_, 0, 255);
  EXPECT_EQ(satd_4x4(cur, ref), ref::satd_4x4(cur, ref));
}

TEST_P(KernelVsReference, SadMatches) {
  const auto cur = random_block(rng_, 0, 255);
  const auto ref = random_block(rng_, 0, 255);
  EXPECT_EQ(sad_4x4(cur, ref), ref::sad_4x4(cur, ref));
}

TEST_P(KernelVsReference, DctMatches) {
  const auto res = random_block(rng_);
  EXPECT_EQ(dct_4x4(res), ref::dct_4x4(res));
}

TEST_P(KernelVsReference, Ht4Matches) {
  const auto dc = random_block(rng_, -2048, 2048);
  EXPECT_EQ(ht_4x4(dc), ref::ht_4x4(dc));
}

TEST_P(KernelVsReference, Ht2Matches) {
  Block2x2 dc{};
  for (auto& v : dc) v = static_cast<std::int32_t>(rng_.range(-2048, 2048));
  EXPECT_EQ(ht_2x2(dc), ref::ht_2x2(dc));
}

INSTANTIATE_TEST_SUITE_P(RandomBlocks, KernelVsReference,
                         ::testing::Range<std::uint64_t>(1, 51));

TEST(Kernels, SatdProperties) {
  rispp::util::Xoshiro256 rng(17);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_block(rng, 0, 255);
    const auto b = random_block(rng, 0, 255);
    // Identity → zero; symmetry; non-negativity.
    EXPECT_EQ(satd_4x4(a, a), 0);
    EXPECT_EQ(satd_4x4(a, b), satd_4x4(b, a));
    EXPECT_GE(satd_4x4(a, b), 0);
    EXPECT_GE(sad_4x4(a, b), 0);
  }
}

TEST(Kernels, DctLinearity) {
  // The integer core transform is linear: T(a + b) = T(a) + T(b).
  rispp::util::Xoshiro256 rng(19);
  for (int i = 0; i < 50; ++i) {
    const auto a = random_block(rng, -100, 100);
    const auto b = random_block(rng, -100, 100);
    Block4x4 sum{};
    for (int k = 0; k < 16; ++k) sum[k] = a[k] + b[k];
    const auto ta = dct_4x4(a), tb = dct_4x4(b), ts = dct_4x4(sum);
    for (int k = 0; k < 16; ++k) EXPECT_EQ(ts[k], ta[k] + tb[k]);
  }
}

TEST(Kernels, DctDcCoefficientIsBlockSum) {
  rispp::util::Xoshiro256 rng(23);
  const auto b = random_block(rng, -64, 64);
  std::int32_t sum = 0;
  for (auto v : b) sum += v;
  EXPECT_EQ(dct_4x4(b)[0], sum);
}

TEST(Kernels, Ht2x2SelfInverseUpToScale) {
  // H2·H2 = 4·I: applying the 2x2 Hadamard twice scales by 4.
  rispp::util::Xoshiro256 rng(29);
  for (int i = 0; i < 50; ++i) {
    Block2x2 x{};
    for (auto& v : x) v = static_cast<std::int32_t>(rng.range(-512, 512));
    const auto twice = ht_2x2(ht_2x2(x));
    for (int k = 0; k < 4; ++k) EXPECT_EQ(twice[k], 4 * x[k]);
  }
}

TEST(Kernels, QuantizeZeroIsZeroAndSignPreserved) {
  Block4x4 zero{};
  const auto q = quantize(zero, 28);
  for (auto v : q) EXPECT_EQ(v, 0);

  Block4x4 c{};
  c[0] = 10000;   // position (0,0) — quant class a
  c[2] = -10000;  // position (0,2) — same class, so same magnitude
  const auto q2 = quantize(c, 28);
  EXPECT_GT(q2[0], 0);
  EXPECT_EQ(q2[2], -q2[0]);
}

TEST(Kernels, QuantizeCoarserAtHigherQp) {
  Block4x4 c{};
  for (int i = 0; i < 16; ++i) c[i] = 5000 + 100 * i;
  const auto q_low = quantize(c, 10);
  const auto q_high = quantize(c, 40);
  for (int i = 0; i < 16; ++i) EXPECT_GE(q_low[i], q_high[i]);
}

TEST(Kernels, IdctInvertsDctThroughTheScalingChain) {
  // idct(dct(X)) alone is NOT the identity — the core transform's rows have
  // unequal norms, which only the position-dependent quant/rescale chain
  // compensates (H.264 8.5.9). At qp=0 the chain is near-lossless.
  rispp::util::Xoshiro256 rng(37);
  for (int t = 0; t < 200; ++t) {
    const auto x = random_block(rng, -255, 255);
    const auto recon =
        idct_scale(idct_4x4(dequantize(quantize(dct_4x4(x), 0), 0)));
    for (int i = 0; i < 16; ++i)
      EXPECT_NEAR(recon[i], x[i], 2) << "trial " << t;
  }
}

TEST(Kernels, IdctLinearity) {
  rispp::util::Xoshiro256 rng(41);
  // The inverse butterfly's >>1 stages are exact (and thus linear) when
  // inputs are multiples of 4: the row pass then produces even outputs, so
  // the column pass's shifts are exact too.
  for (int t = 0; t < 50; ++t) {
    auto a = random_block(rng, -100, 100);
    auto b = random_block(rng, -100, 100);
    for (auto& v : a) v *= 4;
    for (auto& v : b) v *= 4;
    Block4x4 sum{};
    for (int i = 0; i < 16; ++i) sum[i] = a[i] + b[i];
    const auto ta = idct_4x4(a), tb = idct_4x4(b), ts = idct_4x4(sum);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(ts[i], ta[i] + tb[i]);
  }
}

TEST(Kernels, QuantDequantRoundTripBoundedByStep) {
  // Full encode/decode chain: dct → quantize → dequantize → idct → scale.
  // Reconstruction error per pixel is bounded by roughly the quantization
  // step of the chosen qp.
  rispp::util::Xoshiro256 rng(43);
  for (int qp : {0, 10, 22, 28}) {
    const int step = (10 << (qp / 6)) / 4;  // coarse per-pixel step bound
    for (int t = 0; t < 40; ++t) {
      const auto x = random_block(rng, -128, 127);
      const auto recon =
          idct_scale(idct_4x4(dequantize(quantize(dct_4x4(x), qp), qp)));
      for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(recon[i], x[i], step + 2)
            << "qp " << qp << " trial " << t;
    }
  }
}

TEST(Kernels, HigherQpCoarserReconstruction) {
  rispp::util::Xoshiro256 rng(47);
  double err_low = 0, err_high = 0;
  for (int t = 0; t < 100; ++t) {
    const auto x = random_block(rng, -128, 127);
    auto chain = [&](int qp) {
      const auto recon =
          idct_scale(idct_4x4(dequantize(quantize(dct_4x4(x), qp), qp)));
      double e = 0;
      for (int i = 0; i < 16; ++i) e += std::abs(recon[i] - x[i]);
      return e;
    };
    err_low += chain(10);
    err_high += chain(40);
  }
  EXPECT_LT(err_low, err_high);
}

TEST(Kernels, ResidualMatchesQuadSubComposition) {
  rispp::util::Xoshiro256 rng(31);
  const auto a = random_block(rng, 0, 255);
  const auto b = random_block(rng, 0, 255);
  const auto r = residual_4x4(a, b);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r[i], a[i] - b[i]);
}

}  // namespace
