/// Streaming-engine tests: the ResultSink seam (ordered delivery, bounded
/// reorder buffer, cancellation), sweep sharding and index-addressed point
/// materialization, the JSONL manifest (spill / checkpoint / shard output)
/// with kill-and-resume including torn tails, and the merge determinism
/// contract — merged bytes identical to a single-process run at any shard
/// count and worker count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "rispp/exp/manifest.hpp"
#include "rispp/exp/platform.hpp"
#include "rispp/exp/runner.hpp"
#include "rispp/exp/sink.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/exp/sweep.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::exp;
using rispp::util::PreconditionError;

/// A cheap pure-ISA evaluator (no simulation) for engine-mechanics tests.
PointMetrics cheap_eval(const Platform& platform, const SweepPoint& point) {
  const auto& si = platform.library().find(point.at("si"));
  const auto best =
      si.best_with_budget(point.get_u64("budget", 0), platform.catalog());
  return {{"cycles",
           std::to_string(best ? best->cycles : si.software_cycles())},
          {"feasible", best ? "1" : "0"}};
}

Sweep cheap_sweep(const Platform& platform, std::uint64_t seed = 3) {
  Sweep sweep;
  std::vector<std::string> names;
  for (const auto& si : platform.library().sis()) names.push_back(si.name());
  sweep.axis("si", names)
      .axis("budget", {"0", "2", "4", "8", "16"})
      .base_seed(seed);
  return sweep;
}

/// Records everything it sees, for asserting the delivery contract.
struct RecordingSink : ResultSink {
  std::vector<std::size_t> order;
  ResultTable table;
  bool finished = false;
  void on_row(const ResultRow& row) override {
    order.push_back(row.point);
    table.add(row);
  }
  void finish() override { finished = true; }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(StreamRunner, SinkSeesRowsInAscendingPointOrderAtAnyJobs) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto serial = Runner(platform, {1}).run(sweep, cheap_eval);
  for (const unsigned jobs : {1u, 4u, 8u}) {
    RecordingSink sink;
    RunStats stats;
    Runner::RunOptions opts;
    opts.stats = &stats;
    Runner(platform, {jobs}).run(sweep, cheap_eval, sink, opts);
    ASSERT_EQ(sink.order.size(), sweep.size()) << jobs;
    for (std::size_t i = 1; i < sink.order.size(); ++i)
      EXPECT_LT(sink.order[i - 1], sink.order[i]) << jobs;
    EXPECT_TRUE(sink.finished);
    EXPECT_EQ(sink.table.csv(), serial.csv()) << jobs;
    EXPECT_EQ(stats.points_evaluated, sweep.size());
    EXPECT_LE(stats.max_reorder_buffered, stats.reorder_window);
  }
}

TEST(StreamRunner, ReorderBufferStaysWithinWindowUnderSkew) {
  // Point 0 is deliberately slow: without backpressure the other workers
  // would race ahead and buffer nearly the whole sweep. The claim gate must
  // cap the buffer at the window — O(window), not O(points).
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto slow_first = [](const Platform& p, const SweepPoint& point) {
    if (point.index == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return cheap_eval(p, point);
  };
  RunnerConfig cfg;
  cfg.jobs = 4;
  cfg.reorder_window = 5;
  RecordingSink sink;
  RunStats stats;
  Runner::RunOptions opts;
  opts.stats = &stats;
  Runner(platform, cfg).run(sweep, slow_first, sink, opts);
  EXPECT_EQ(stats.reorder_window, 5u);
  EXPECT_LE(stats.max_reorder_buffered, 5u);
  EXPECT_LT(stats.max_reorder_buffered, sweep.size());
  ASSERT_EQ(sink.order.size(), sweep.size());
  for (std::size_t i = 1; i < sink.order.size(); ++i)
    EXPECT_LT(sink.order[i - 1], sink.order[i]);
}

TEST(StreamRunner, MaxPointsStopsAfterACleanPrefix) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  RecordingSink sink;
  RunStats stats;
  Runner::RunOptions opts;
  opts.max_points = 7;
  opts.stats = &stats;
  Runner(platform, {4}).run(sweep, cheap_eval, sink, opts);
  EXPECT_EQ(stats.points_total, sweep.size());
  EXPECT_EQ(stats.points_evaluated, 7u);
  ASSERT_EQ(sink.order.size(), 7u);
  const auto indices = sweep.indices();
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(sink.order[i], indices[i]);
  EXPECT_TRUE(sink.finished);  // a clean partial run still finishes sinks
}

TEST(StreamRunner, CompletedMaskSkipsExactlyThosePoints) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  std::vector<bool> completed(sweep.total_points(), false);
  completed[0] = completed[3] = completed[17] = true;
  RecordingSink sink;
  RunStats stats;
  Runner::RunOptions opts;
  opts.completed = &completed;
  opts.stats = &stats;
  Runner(platform, {4}).run(sweep, cheap_eval, sink, opts);
  EXPECT_EQ(stats.points_evaluated, sweep.size() - 3);
  for (const auto p : sink.order)
    EXPECT_TRUE(p != 0 && p != 3 && p != 17) << p;
}

TEST(StreamRunner, SinkExceptionCancelsTheRun) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  struct ThrowingSink : ResultSink {
    std::size_t seen = 0;
    void on_row(const ResultRow&) override {
      if (++seen == 3) throw PreconditionError("sink is full");
    }
  };
  for (const unsigned jobs : {1u, 4u}) {
    ThrowingSink sink;
    EXPECT_THROW(Runner(platform, {jobs}).run(sweep, cheap_eval, sink),
                 PreconditionError)
        << jobs;
  }
}

TEST(StreamAggregator, DeterministicAcrossJobsAndKnownValues) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  StreamingAggregator serial, parallel;
  Runner(platform, {1}).run(sweep, cheap_eval, serial);
  Runner(platform, {4}).run(sweep, cheap_eval, parallel);
  EXPECT_EQ(serial.summary_json(), parallel.summary_json());
  EXPECT_EQ(serial.rows(), sweep.size());

  // Known values: metric x = 1..100 in point order.
  Sweep plan;
  for (int i = 1; i <= 100; ++i)
    plan.add_point({{"x", std::to_string(i)}, {"label", "p" + std::to_string(i)}});
  StreamingAggregator agg;
  for (const auto& p : plan.points()) {
    ResultRow row;
    row.point = p.index;
    row.seed = p.seed;
    row.cells = p.params;
    agg.on_row(row);
  }
  ASSERT_EQ(agg.metrics().size(), 2u);
  const auto& x = agg.metrics()[0];
  EXPECT_EQ(x.name, "x");
  EXPECT_EQ(x.acc.count(), 100u);
  EXPECT_DOUBLE_EQ(x.acc.mean(), 50.5);
  EXPECT_DOUBLE_EQ(x.acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(x.acc.max(), 100.0);
  const auto p50 = x.sketch.percentile(0.50);
  EXPECT_LE(p50.lower, 50.0);
  EXPECT_GT(p50.upper, 50.0);
  // The non-numeric label column folds nothing but is counted.
  const auto& label = agg.metrics()[1];
  EXPECT_EQ(label.name, "label");
  EXPECT_EQ(label.acc.count(), 0u);
  EXPECT_EQ(label.non_numeric, 100u);
  const auto json = agg.summary_json();
  EXPECT_NE(json.find("\"schema\": \"rispp.sweep_summary\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mean\": 50.5"), std::string::npos);
}

TEST(StreamCsvSpill, MatchesTableCsvForRectangularSweeps) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  std::ostringstream spill;
  CsvSpillSink sink(spill);
  Runner(platform, {4}).run(sweep, cheap_eval, sink);
  const auto table = Runner(platform, {1}).run(sweep, cheap_eval);
  EXPECT_EQ(spill.str(), table.csv());
}

TEST(StreamCsvSpill, RejectsColumnsAppearingAfterTheHeader) {
  std::ostringstream out;
  CsvSpillSink sink(out);
  sink.on_row({0, 1, {{"a", "1"}}});
  EXPECT_THROW(sink.on_row({1, 2, {{"a", "2"}, {"b", "3"}}}),
               PreconditionError);
  // Missing cells are fine — they render empty, like ResultTable CSV.
  sink.on_row({2, 3, {}});
  EXPECT_EQ(out.str(), "point,seed,a\n0,1,1\n2,3,\n");
}

TEST(SweepShard, ViewsPartitionThePlanWithUnchangedSeeds) {
  const auto platform = Platform::builtin("h264");
  const auto full = cheap_sweep(*platform);
  const auto all = full.points();
  for (const std::size_t n : {1u, 3u, 8u}) {
    std::set<std::size_t> seen;
    std::size_t view_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      auto view = cheap_sweep(*platform);
      view.shard(i, n);
      EXPECT_EQ(view.total_points(), all.size());
      const auto pts = view.points();
      EXPECT_EQ(pts.size(), view.size());
      view_total += pts.size();
      for (const auto& p : pts) {
        EXPECT_TRUE(seen.insert(p.index).second) << "overlap at " << p.index;
        EXPECT_EQ(p.seed, all[p.index].seed);
        EXPECT_EQ(p.params, all[p.index].params);
      }
    }
    EXPECT_EQ(view_total, all.size()) << n << " shards";
    EXPECT_EQ(seen.size(), all.size()) << n << " shards";
  }
  Sweep bad = cheap_sweep(*platform);
  EXPECT_THROW(bad.shard(3, 3), PreconditionError);
  EXPECT_THROW(bad.shard(0, 0), PreconditionError);
}

TEST(SweepShard, PointAtMatchesEnumerationInBothModes) {
  const auto platform = Platform::builtin("h264");
  const auto grid = cheap_sweep(*platform);
  const auto pts = grid.points();
  for (const auto& p : pts) {
    const auto q = grid.point_at(p.index);
    EXPECT_EQ(q.index, p.index);
    EXPECT_EQ(q.seed, p.seed);
    EXPECT_EQ(q.params, p.params);
  }
  EXPECT_THROW(grid.point_at(pts.size()), PreconditionError);
  Sweep list;
  list.add_point({{"a", "1"}}).add_point({{"a", "2"}});
  EXPECT_EQ(list.point_at(1).at("a"), "2");
  EXPECT_EQ(list.point_at(1).seed, Sweep::derive_seed(1, 1));
}

TEST(SweepShard, SpecFingerprintAndDescribe) {
  auto a = Sweep::parse_grid("containers=4,8;workload=enc");
  EXPECT_EQ(a.spec(), "containers=4,8;workload=enc");
  auto b = Sweep::parse_grid(a.spec());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Sharding does not change the plan identity; seeds and values do.
  b.shard(1, 2);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.base_seed(9);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(),
            Sweep::parse_grid("containers=4,9;workload=enc").fingerprint());

  const auto text = a.describe(1);
  EXPECT_NE(text.find("total points: 2"), std::string::npos);
  EXPECT_NE(text.find("axis containers (2): 4,8"), std::string::npos);
  EXPECT_NE(text.find("point 0 seed"), std::string::npos);
  EXPECT_NE(text.find("... (1 more points)"), std::string::npos);
}

TEST(ManifestIo, RoundTripsHeaderAndRows) {
  const auto platform = Platform::builtin("h264");
  auto sweep = cheap_sweep(*platform);
  sweep.shard(1, 3);
  const auto header =
      ManifestHeader::for_sweep(sweep, platform->name(), "cheap/1");
  const auto path = temp_path("manifest_roundtrip.jsonl");
  {
    ManifestWriter writer(path, header);
    Runner(platform, {2}).run(sweep, cheap_eval, writer);
    EXPECT_EQ(writer.rows_written(), sweep.size());
  }
  const auto m = read_manifest(path);
  EXPECT_FALSE(m.torn_tail);
  EXPECT_TRUE(m.header.compatible_with(header));
  EXPECT_EQ(m.header.shard_index, 1u);
  EXPECT_EQ(m.header.shard_count, 3u);
  EXPECT_EQ(m.header.grid, sweep.spec());
  ASSERT_EQ(m.rows.size(), sweep.size());
  const auto pts = sweep.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(m.rows[i].point, pts[i].index);
    EXPECT_EQ(m.rows[i].seed, pts[i].seed);
  }
  const auto done = m.completed();
  EXPECT_EQ(done.size(), sweep.total_points());
  for (std::size_t k = 0; k < done.size(); ++k)
    EXPECT_EQ(done[k], k % 3 == 1) << k;
}

TEST(ManifestIo, TornTailIsDroppedAndReportsValidPrefix) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto header =
      ManifestHeader::for_sweep(sweep, platform->name(), "cheap/1");
  const auto path = temp_path("manifest_torn.jsonl");
  {
    ManifestWriter writer(path, header);
    Runner::RunOptions opts;
    opts.max_points = 4;
    Runner(platform, {1}).run(sweep, cheap_eval, writer, opts);
  }
  const auto intact_bytes = std::filesystem::file_size(path);
  const auto intact = read_manifest(path);
  ASSERT_EQ(intact.rows.size(), 4u);
  EXPECT_EQ(intact.valid_bytes, intact_bytes);
  std::filesystem::resize_file(path, intact_bytes - 5);  // kill mid-write
  const auto torn = read_manifest(path);
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.rows.size(), 3u);
  // The valid prefix ends where the torn row began: truncating there and
  // re-reading yields a clean manifest.
  std::filesystem::resize_file(path, torn.valid_bytes);
  const auto clean = read_manifest(path);
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.rows.size(), 3u);
}

TEST(ManifestIo, InteriorCorruptionThrows) {
  const auto path = temp_path("manifest_corrupt.jsonl");
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto header =
      ManifestHeader::for_sweep(sweep, platform->name(), "cheap/1");
  std::ofstream out(path, std::ios::binary);
  out << manifest_header_line(header) << "\n";
  out << "{\"point\":0,\"seed\":garbage}\n";
  out << manifest_row_line({1, Sweep::derive_seed(3, 1), {{"a", "1"}}})
      << "\n";
  out.close();
  EXPECT_THROW(read_manifest(path), PreconditionError);
}

TEST(MergeDeterminism, ByteIdenticalAcrossShardCountsJobsAndResume) {
  const auto platform = Platform::builtin("h264");
  const auto reference =
      Runner(platform, {1}).run(cheap_sweep(*platform), cheap_eval);
  const auto ref_csv = reference.csv();
  const auto ref_json = reference.json();

  for (const std::size_t shards : {1u, 3u, 8u}) {
    for (const unsigned jobs : {1u, 4u}) {
      std::vector<std::string> paths;
      for (std::size_t i = 0; i < shards; ++i) {
        auto view = cheap_sweep(*platform);
        view.shard(i, shards);
        const auto path = temp_path("merge_s" + std::to_string(shards) +
                                    "_j" + std::to_string(jobs) + "_" +
                                    std::to_string(i) + ".jsonl");
        ManifestWriter writer(
            path, ManifestHeader::for_sweep(view, platform->name(),
                                            "cheap/1"));
        Runner(platform, {jobs}).run(view, cheap_eval, writer);
        paths.push_back(path);
      }
      const auto merged = merge_manifest_files(paths);
      EXPECT_EQ(merged.csv(), ref_csv) << shards << " shards, " << jobs
                                       << " jobs";
      EXPECT_EQ(merged.json(), ref_json) << shards << " shards, " << jobs
                                         << " jobs";
    }
  }

  // Kill/resume: evaluate half of one full-view run, then resume the rest
  // into the same file — merged output must still match byte for byte.
  const auto path = temp_path("merge_resumed.jsonl");
  auto sweep = cheap_sweep(*platform);
  const auto header =
      ManifestHeader::for_sweep(sweep, platform->name(), "cheap/1");
  {
    ManifestWriter writer(path, header);
    Runner::RunOptions opts;
    opts.max_points = sweep.size() / 2;
    Runner(platform, {4}).run(sweep, cheap_eval, writer, opts);
  }
  {
    const auto checkpoint = read_manifest(path);
    const auto completed = checkpoint.completed();
    ManifestWriter writer(path, header, /*append=*/true);
    Runner::RunOptions opts;
    opts.completed = &completed;
    Runner(platform, {4}).run(sweep, cheap_eval, writer, opts);
  }
  EXPECT_EQ(merge_manifest_files({path}).csv(), ref_csv);
}

TEST(MergeDeterminism, RejectsMissingForeignAndConflictingRows) {
  const auto platform = Platform::builtin("h264");
  auto s0 = cheap_sweep(*platform);
  s0.shard(0, 2);
  const auto p0 = temp_path("merge_bad_s0.jsonl");
  {
    ManifestWriter writer(
        p0, ManifestHeader::for_sweep(s0, platform->name(), "cheap/1"));
    Runner(platform, {1}).run(s0, cheap_eval, writer);
  }
  // Missing shard 1: the error lists absent points.
  try {
    merge_manifest_files({p0});
    FAIL() << "expected missing points to throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1"), std::string::npos);
  }
  EXPECT_EQ(merge_manifest_files({p0}, /*allow_partial=*/true).size(),
            s0.size());

  // A shard of a different plan (other base seed) is refused.
  auto foreign = cheap_sweep(*platform, /*seed=*/99);
  foreign.shard(1, 2);
  const auto pf = temp_path("merge_bad_foreign.jsonl");
  {
    ManifestWriter writer(
        pf, ManifestHeader::for_sweep(foreign, platform->name(), "cheap/1"));
    Runner(platform, {1}).run(foreign, cheap_eval, writer);
  }
  EXPECT_THROW(merge_manifest_files({p0, pf}), PreconditionError);

  // Conflicting duplicate: same point, different cells.
  auto m = read_manifest(p0);
  auto tampered = m;
  tampered.rows.at(0).cells.at(0).second += "x";
  EXPECT_THROW(merge_manifests({m, tampered}), PreconditionError);
  // Identical duplicates (overlapping shards) are fine.
  EXPECT_EQ(merge_manifests({m, m}, /*allow_partial=*/true).size(),
            m.rows.size());
}

TEST(MergeDeterminism, SimEvaluatorGoldenAcrossShardsMatchesCheckedInCsv) {
  // The real evaluator on the CI smoke grid: 3 shards, mixed jobs, merged —
  // byte-identical to tests/data/sweep_golden.csv.
  auto base = Sweep::parse_grid(
      "workload=enc;frames=1;mb=20;containers=4,6;quantum=10000,30000");
  base.base_seed(1);
  const auto platform = Platform::builtin("h264_frame");
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < 3; ++i) {
    auto view = base;
    view.shard(i, 3);
    const auto path = temp_path("golden_shard_" + std::to_string(i) +
                                ".jsonl");
    ManifestWriter writer(
        path,
        ManifestHeader::for_sweep(view, platform->name(), kSimEvaluatorId));
    run_sim_sweep_into(platform, view, i % 2 ? 1 : 2, writer);
    paths.push_back(path);
  }
  const auto merged = merge_manifest_files(paths);
  std::ifstream in(std::string(RISPP_TEST_DATA_DIR) + "/sweep_golden.csv",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(merged.csv(), golden.str());
}

TEST(StreamCancellation, ThrowingPointFnJoinsWorkersWithSpillSinkOpen) {
  // A mid-sweep evaluator exception with a manifest (spill) sink open must
  // cancel outstanding points, join every worker (TSan watches for leaked
  // threads and races), leave the manifest a valid prefix, and not call
  // finish(). Runs under the `concurrency` ctest label.
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto cursed = [](const Platform& p, const SweepPoint& point) {
    if (point.index == 10) throw PreconditionError("point 10 is cursed");
    return cheap_eval(p, point);
  };
  for (const unsigned jobs : {1u, 4u, 8u}) {
    const auto path =
        temp_path("cancel_spill_j" + std::to_string(jobs) + ".jsonl");
    std::atomic<bool> finished{false};
    struct NotifyingWriter : ManifestWriter {
      std::atomic<bool>* flag;
      NotifyingWriter(const std::string& p, const ManifestHeader& h,
                      std::atomic<bool>* f)
          : ManifestWriter(p, h), flag(f) {}
      void finish() override {
        flag->store(true);
        ManifestWriter::finish();
      }
    } writer(path,
             ManifestHeader::for_sweep(sweep, platform->name(), "cheap/1"),
             &finished);
    EXPECT_THROW(Runner(platform, {jobs}).run(sweep, cursed, writer),
                 PreconditionError)
        << jobs;
    EXPECT_FALSE(finished.load()) << jobs;
    // The file is a clean prefix: readable, rows only for points < 10.
    const auto m = read_manifest(path);
    EXPECT_FALSE(m.torn_tail);
    EXPECT_LT(m.rows.size(), sweep.size());
    for (const auto& row : m.rows) EXPECT_LT(row.point, 10u);
  }
}

TEST(StreamCancellation, FirstEvaluatorErrorWinsAndNothingDeadlocks) {
  // Every point throws; whatever the interleaving, the run must terminate
  // and rethrow exactly one of them.
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto always = [](const Platform&, const SweepPoint&) -> PointMetrics {
    throw PreconditionError("every point is cursed");
  };
  for (const unsigned jobs : {1u, 4u})
    EXPECT_THROW(Runner(platform, {jobs}).run(sweep, always), PreconditionError);
}

}  // namespace
