/// Cross-module integration: compile-time forecast plans driving the
/// run-time system inside the simulator, reproducing the paper's headline
/// behaviours end to end.

#include <gtest/gtest.h>

#include "rispp/aes/graph.hpp"
#include "rispp/baseline/asip.hpp"
#include "rispp/forecast/forecast_pass.hpp"
#include "rispp/h264/workload.hpp"
#include "rispp/sim/simulator.hpp"

namespace {

using rispp::isa::SiLibrary;

TEST(Integration, EncoderSpeedupOver3xWithMinimalAtoms) {
  // Fig 12: minimal-atom RISPP is "more than 300% faster" than software.
  const auto lib = SiLibrary::h264();
  rispp::h264::TraceParams p;
  p.macroblocks = 99;  // one QCIF frame
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 4;
  cfg.rt.record_events = false;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  sim.add_task({"enc", rispp::h264::make_encode_trace(lib, p)});
  const auto r = sim.run();
  const double sw_total = static_cast<double>(
      p.macroblocks *
      rispp::h264::software_cycles_per_mb(lib, p.counts, p.model));
  EXPECT_GT(sw_total / static_cast<double>(r.total_cycles), 3.0);
}

TEST(Integration, AmdahlFlatteningAcrossAtomBudgets) {
  // Fig 12 shape: 4 → 5 → 6 atoms improves, but only marginally.
  const auto lib = SiLibrary::h264();
  rispp::h264::TraceParams p;
  p.macroblocks = 60;
  std::vector<double> totals;
  for (unsigned containers : {4u, 5u, 6u}) {
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = containers;
    cfg.rt.record_events = false;
    rispp::sim::Simulator sim(borrow(lib), cfg);
    sim.add_task({"enc", rispp::h264::make_encode_trace(lib, p)});
    totals.push_back(static_cast<double>(sim.run().total_cycles));
  }
  EXPECT_LE(totals[1], totals[0]);
  EXPECT_LE(totals[2], totals[1]);
  // Marginal: 6 atoms buys < 10 % over 4 atoms.
  EXPECT_GT(totals[2] / totals[0], 0.90);
}

TEST(Integration, ForecastingBeatsNoForecasting) {
  // DESIGN.md ablation 3: without FCs nothing ever rotates (the run-time
  // system is forecast-driven), so everything stays in software.
  const auto lib = SiLibrary::h264();
  rispp::h264::TraceParams p;
  p.macroblocks = 20;
  auto run = [&](std::uint64_t every) {
    auto params = p;
    params.forecast_every_mbs = every;
    rispp::sim::SimConfig cfg;
    cfg.rt.record_events = false;
    rispp::sim::Simulator sim(borrow(lib), cfg);
    sim.add_task({"enc", rispp::h264::make_encode_trace(lib, params)});
    return sim.run().total_cycles;
  };
  const auto with_fc = run(1);
  const auto without_fc = run(0);
  EXPECT_LT(with_fc, without_fc / 2);
}

TEST(Integration, AesPlanDrivesRuntimeSpeedup) {
  // Forecast pass output (Fig 3) → run-time manager: replay the AES round
  // loop with the plan's FC blocks and confirm hardware execution engages.
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(2000);
  rispp::forecast::ForecastConfig fcfg;
  fcfg.alpha = 0.05;
  const auto plan = rispp::forecast::run_forecast_pass(g, lib, fcfg);
  ASSERT_GT(plan.total_points(), 0u);

  rispp::rt::RtConfig rcfg;
  rcfg.atom_containers = 8;  // fits the Reps of SUBBYTES + MIXCOLUMNS
  rcfg.record_events = false;
  rispp::rt::RisppManager mgr(borrow(lib), rcfg);
  // Fire every planned FC block once at t = 0 …
  for (const auto& fb : plan.blocks) mgr.on_fc_block(fb, 0);
  // … then run the steady-state round loop far past the rotation window.
  std::uint64_t hw = 0, sw_cycles = 0, actual_cycles = 0;
  rispp::rt::Cycle now = 4'000'000;
  for (int round = 0; round < 100; ++round) {
    for (const auto name : {"SUBBYTES", "MIXCOLUMNS"}) {
      const auto& si = lib.find(name);
      const auto res = mgr.execute(lib.index_of(name), now);
      now += res.cycles;
      actual_cycles += res.cycles;
      sw_cycles += si.software_cycles();
      if (res.hardware) ++hw;
    }
  }
  // The forecasted subset runs in hardware; the loop as a whole is far
  // faster than all-software.
  EXPECT_GT(hw, 0u);
  EXPECT_LT(actual_cycles, sw_cycles / 2);
}

TEST(Integration, RisppApproachesAsipWithFullBudget) {
  // With a generous atom budget and warmed containers, RISPP executes every
  // SI at the ASIP's (fastest-molecule) latency — while the ASIP dedicates
  // the summed hardware permanently.
  const auto lib = SiLibrary::h264();
  const rispp::baseline::Asip asip(lib);

  rispp::rt::RtConfig rcfg;
  rcfg.atom_containers = 20;
  rispp::rt::RisppManager mgr(borrow(lib), rcfg);
  for (std::size_t s = 0; s < lib.size(); ++s)
    mgr.forecast(s, 100, 1.0, 0);
  const rispp::rt::Cycle warm = 5'000'000;
  for (const auto& si : lib.sis()) {
    const auto res = mgr.execute(lib.index_of(si.name()), warm);
    EXPECT_TRUE(res.hardware) << si.name();
    EXPECT_EQ(res.cycles, asip.cycles(si.name())) << si.name();
  }
  // Area contrast (Fig 1 in atom terms): ASIP sum vs RISPP sup.
  EXPECT_GT(asip.dedicated_atom_count(),
            mgr.committed_atoms().determinant() == 0
                ? 0u
                : mgr.committed_atoms().determinant());
}

TEST(Integration, MultiTaskScenarioSharesAndRotates) {
  // A compact Fig-6-style scenario: Task A runs SATD on 4 containers; Task
  // B then forecasts HT_4x4 with overwhelming weight — the selector
  // reallocates the containers to HT's wide Molecules (Pack/Transform
  // only), evicting SATD's atoms; A falls back to software until B
  // releases, then recovers.
  const auto lib = SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  const auto ht4 = lib.index_of("HT_4x4");

  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 4;
  cfg.quantum = 50000;
  rispp::sim::Simulator sim(borrow(lib), cfg);

  rispp::sim::Trace a;
  a.push_back(rispp::sim::TraceOp::forecast(satd, 10000));
  for (int i = 0; i < 80; ++i) {
    a.push_back(rispp::sim::TraceOp::compute(20000));
    a.push_back(rispp::sim::TraceOp::si(satd, 100));
  }
  rispp::sim::Trace b;
  b.push_back(rispp::sim::TraceOp::compute(900000));
  b.push_back(rispp::sim::TraceOp::forecast(ht4, 1000000));
  for (int i = 0; i < 10; ++i) {
    b.push_back(rispp::sim::TraceOp::compute(20000));
    b.push_back(rispp::sim::TraceOp::si(ht4, 200));
  }
  b.push_back(rispp::sim::TraceOp::release(ht4));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
  const auto r = sim.run();

  // Both tasks got hardware executions at some point.
  EXPECT_GT(r.si("SATD_4x4").hw_invocations, 0u);
  EXPECT_GT(r.si("HT_4x4").hw_invocations, 0u);
  // A was forced back to software while B held the containers.
  EXPECT_GT(r.si("SATD_4x4").sw_invocations, 0u);
  // The reallocation (and the recovery after release) forced rotations
  // beyond the initial four.
  EXPECT_GT(r.rotations, 4u);
}

}  // namespace
