#include <gtest/gtest.h>

#include "rispp/cfg/distance.hpp"
#include "rispp/cfg/probability.hpp"

namespace {

using namespace rispp::cfg;

TEST(MinDistance, StraightLineSumsBodyCycles) {
  // a(10) → b(20) → t: distance(a) = 10 + 20, distance(b) = 20.
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 20);
  const auto t = g.add_block("t", 5);
  g.add_edge(a, b, 1);
  g.add_edge(b, t, 1);
  const auto d = min_distance_cycles(g, {t});
  EXPECT_DOUBLE_EQ(d[t], 0.0);
  EXPECT_DOUBLE_EQ(d[b], 20.0);
  EXPECT_DOUBLE_EQ(d[a], 30.0);
}

TEST(MinDistance, TakesShortestBranch) {
  //    a → b(100) → t
  //      → c(7)   → t
  BBGraph g;
  const auto a = g.add_block("a", 1);
  const auto b = g.add_block("b", 100);
  const auto c = g.add_block("c", 7);
  const auto t = g.add_block("t", 1);
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(b, t, 1);
  g.add_edge(c, t, 1);
  const auto d = min_distance_cycles(g, {t});
  EXPECT_DOUBLE_EQ(d[a], 8.0);  // a's own body + c's body
}

TEST(MinDistance, UnreachableIsInfinity) {
  BBGraph g;
  const auto a = g.add_block("a", 1);
  const auto t = g.add_block("t", 1);
  g.add_edge(t, a, 1);  // only t → a, so a cannot reach t
  const auto d = min_distance_cycles(g, {t});
  EXPECT_EQ(d[a], kUnreachable);
  EXPECT_DOUBLE_EQ(d[t], 0.0);
}

TEST(MinDistance, MultipleTargetsNearestWins) {
  BBGraph g;
  const auto a = g.add_block("a", 2);
  const auto t1 = g.add_block("t1", 1);
  const auto mid = g.add_block("m", 50);
  const auto t2 = g.add_block("t2", 1);
  g.add_edge(a, t1, 1);
  g.add_edge(a, mid, 1);
  g.add_edge(mid, t2, 1);
  const auto d = min_distance_cycles(g, {t1, t2});
  EXPECT_DOUBLE_EQ(d[a], 2.0);
}

TEST(ExpectedDistance, DeterministicChainMatchesMin) {
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 20);
  const auto t = g.add_block("t", 5);
  g.add_edge(a, b, 3);
  g.add_edge(b, t, 3);
  const auto p = reach_probability_scc(g, {t});
  const auto d = expected_distance_cycles(g, {t}, p);
  EXPECT_NEAR(d[a], 30.0, 1e-9);
  EXPECT_NEAR(d[b], 20.0, 1e-9);
}

TEST(ExpectedDistance, LoopAddsExpectedIterations) {
  // head(10): self loop with 0.9, exit to target with 0.1 → expected visits
  // of head before exit = 10, so expected distance ≈ 10·10 = 100.
  BBGraph g;
  const auto head = g.add_block("head", 10);
  const auto t = g.add_block("t", 1);
  g.add_edge(head, head, 9);
  g.add_edge(head, t, 1);
  const auto p = reach_probability_scc(g, {t});
  const auto d = expected_distance_cycles(g, {t}, p);
  EXPECT_NEAR(d[head], 100.0, 0.5);
}

TEST(ExpectedDistance, ConditionsOnReachingTheTarget) {
  // a branches: 0.5 to the target (cheap), 0.5 to a dead end. The
  // conditional expected distance from a counts only the reaching branch.
  BBGraph g;
  const auto a = g.add_block("a", 4);
  const auto t = g.add_block("t", 1);
  const auto dead = g.add_block("dead", 1000);
  g.add_edge(a, t, 1);
  g.add_edge(a, dead, 1);
  const auto p = reach_probability_scc(g, {t});
  const auto d = expected_distance_cycles(g, {t}, p);
  EXPECT_NEAR(d[a], 4.0, 1e-9);           // own body only, then target
  EXPECT_EQ(d[dead], kUnreachable);
}

TEST(MaxDistance, LongestPathOnDag) {
  //    a → b(100) → t   and   a → c(7) → t: pessimistic distance takes b.
  BBGraph g;
  const auto a = g.add_block("a", 1);
  const auto b = g.add_block("b", 100);
  const auto c = g.add_block("c", 7);
  const auto t = g.add_block("t", 1);
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(b, t, 1);
  g.add_edge(c, t, 1);
  const auto d = max_distance_cycles(g, {t});
  EXPECT_DOUBLE_EQ(d[t], 0.0);
  EXPECT_GE(d[a], 100.0);
}

TEST(MaxDistance, LoopWeightUsesProfiledTripCount) {
  // A 100-iteration profiled loop between a and the target contributes its
  // full profiled work to the pessimistic distance.
  BBGraph g;
  const auto a = g.add_block("a", 1, 1);
  const auto loop = g.add_block("loop", 10, 100);
  const auto t = g.add_block("t", 1, 1);
  g.add_edge(a, loop, 1);
  g.add_edge(loop, loop, 99);
  g.add_edge(loop, t, 1);
  const auto d = max_distance_cycles(g, {t});
  EXPECT_GE(d[a], 1000.0);  // 100 iterations × 10 cycles
}

TEST(Distances, MinLeqExpectedLeqMax) {
  // On a profiled branchy graph the three distance notions must nest.
  BBGraph g;
  const auto a = g.add_block("a", 5, 100);
  const auto b = g.add_block("b", 50, 60);
  const auto c = g.add_block("c", 10, 40);
  const auto t = g.add_block("t", 1, 100);
  g.add_edge(a, b, 60);
  g.add_edge(a, c, 40);
  g.add_edge(b, t, 60);
  g.add_edge(c, t, 40);
  const auto p = reach_probability_scc(g, {t});
  const auto dmin = min_distance_cycles(g, {t});
  const auto dexp = expected_distance_cycles(g, {t}, p);
  const auto dmax = max_distance_cycles(g, {t});
  EXPECT_LE(dmin[a], dexp[a] + 1e-9);
  EXPECT_LE(dexp[a], dmax[a] + 1e-9);
}

}  // namespace
