#include <gtest/gtest.h>

#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::sim;
using rispp::isa::SiLibrary;
using rispp::util::PreconditionError;

SimConfig default_config(unsigned containers = 4) {
  SimConfig cfg;
  cfg.rt.atom_containers = containers;
  return cfg;
}

class Sim : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
  std::size_t satd_ = lib_.index_of("SATD_4x4");
  std::size_t ht2_ = lib_.index_of("HT_2x2");
};

TEST_F(Sim, PureComputeTaskTakesExactCycles) {
  Simulator sim(borrow(lib_), default_config());
  sim.add_task({"t", {TraceOp::compute(12345)}});
  const auto r = sim.run();
  EXPECT_EQ(r.total_cycles, 12345u);
  EXPECT_EQ(r.task_cycles.at("t"), 12345u);
}

TEST_F(Sim, SoftwareOnlySiCosts) {
  Simulator sim(borrow(lib_), default_config());
  sim.add_task({"t", {TraceOp::si(satd_, 10)}});
  const auto r = sim.run();
  EXPECT_EQ(r.total_cycles, 10u * 544u);
  const auto& st = r.si("SATD_4x4");
  EXPECT_EQ(st.invocations, 10u);
  EXPECT_EQ(st.sw_invocations, 10u);
  EXPECT_EQ(st.hw_invocations, 0u);
}

TEST_F(Sim, ForecastThenComputeThenSiHitsHardware) {
  Simulator sim(borrow(lib_), default_config());
  Trace t;
  t.push_back(TraceOp::forecast(satd_, 256));
  t.push_back(TraceOp::compute(500000));  // rotations finish during this
  t.push_back(TraceOp::si(satd_, 100));
  sim.add_task({"t", std::move(t)});
  const auto r = sim.run();
  const auto& st = r.si("SATD_4x4");
  EXPECT_EQ(st.hw_invocations, 100u);
  EXPECT_EQ(r.total_cycles, 500000u + 100u * 24u);
  EXPECT_EQ(r.rotations, 4u);
}

TEST_F(Sim, RotationInAdvanceUpgradesMidStream) {
  // No explicit compute gap: the SI stream starts in software and upgrades
  // to hardware as rotations complete underneath it.
  Simulator sim(borrow(lib_), default_config());
  Trace t;
  t.push_back(TraceOp::forecast(satd_, 2000));
  t.push_back(TraceOp::si(satd_, 2000));
  sim.add_task({"t", std::move(t)});
  const auto r = sim.run();
  const auto& st = r.si("SATD_4x4");
  EXPECT_GT(st.sw_invocations, 0u);  // warm-up in software
  EXPECT_GT(st.hw_invocations, 0u);  // upgraded eventually
  EXPECT_EQ(st.invocations, 2000u);
  // Total < all-software and > all-hardware.
  EXPECT_LT(r.total_cycles, 2000u * 544u);
  EXPECT_GT(r.total_cycles, 2000u * 24u);
}

TEST_F(Sim, LabelsProduceTimeline) {
  Simulator sim(borrow(lib_), default_config());
  sim.add_task({"t",
                {TraceOp::label("start"), TraceOp::compute(100),
                 TraceOp::label("end")}});
  const auto r = sim.run();
  ASSERT_EQ(r.timeline.size(), 2u);
  EXPECT_EQ(r.timeline[0].text, "start");
  EXPECT_EQ(r.timeline[0].at, 0u);
  EXPECT_EQ(r.timeline[1].text, "end");
  EXPECT_EQ(r.timeline[1].at, 100u);
  EXPECT_EQ(r.timeline[1].task, "t");
}

TEST_F(Sim, TwoTasksInterleaveRoundRobin) {
  SimConfig cfg = default_config();
  cfg.quantum = 1000;
  Simulator sim(borrow(lib_), cfg);
  sim.add_task({"a", {TraceOp::compute(5000)}});
  sim.add_task({"b", {TraceOp::compute(5000)}});
  const auto r = sim.run();
  // Single core: total = sum of both tasks' work.
  EXPECT_EQ(r.total_cycles, 10000u);
  EXPECT_EQ(r.task_cycles.at("a"), 5000u);
  EXPECT_EQ(r.task_cycles.at("b"), 5000u);
}

TEST_F(Sim, TasksShareLoadedAtoms) {
  // Task a forecasts and warms the containers; task b then executes the
  // same SI in hardware without ever forecasting (Fig 6 T3).
  SimConfig cfg = default_config();
  cfg.quantum = 100000;
  Simulator sim(borrow(lib_), cfg);
  sim.add_task({"a",
                {TraceOp::forecast(satd_, 1000), TraceOp::compute(500000),
                 TraceOp::si(satd_, 10)}});
  sim.add_task({"b", {TraceOp::compute(600000), TraceOp::si(satd_, 10)}});
  const auto r = sim.run();
  EXPECT_EQ(r.si("SATD_4x4").hw_invocations, 20u);
}

TEST_F(Sim, RepeatHelperUnrollsLoops) {
  Trace body{TraceOp::compute(10), TraceOp::si(ht2_, 1)};
  Trace t;
  repeat(t, body, 5);
  EXPECT_EQ(t.size(), 10u);
  Simulator sim(borrow(lib_), default_config());
  sim.add_task({"t", std::move(t)});
  const auto r = sim.run();
  EXPECT_EQ(r.si("HT_2x2").invocations, 5u);
}

TEST_F(Sim, DeterministicAcrossRuns) {
  auto run_once = [&] {
    Simulator sim(borrow(lib_), default_config());
    Trace t;
    t.push_back(TraceOp::forecast(satd_, 500));
    for (int i = 0; i < 50; ++i) {
      t.push_back(TraceOp::compute(1000));
      t.push_back(TraceOp::si(satd_, 10));
    }
    sim.add_task({"t", std::move(t)});
    return sim.run().total_cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(Sim, Preconditions) {
  Simulator sim(borrow(lib_), default_config());
  EXPECT_THROW(sim.add_task({"", {TraceOp::compute(1)}}), PreconditionError);
  EXPECT_THROW(sim.add_task({"t", {TraceOp::si(999)}}), PreconditionError);
  SimConfig bad;
  bad.quantum = 0;
  EXPECT_THROW(Simulator(borrow(lib_), bad), PreconditionError);
  EXPECT_THROW(TraceOp::si(satd_, 0), PreconditionError);
}

TEST_F(Sim, ResultSiLookupThrowsOnUnknown) {
  Simulator sim(borrow(lib_), default_config());
  sim.add_task({"t", {TraceOp::compute(1)}});
  const auto r = sim.run();
  EXPECT_THROW(r.si("SATD_4x4"), PreconditionError);  // never invoked
}

}  // namespace
