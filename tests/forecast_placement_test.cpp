/// FC placement (paper §4.2): chains of adjacent FC candidates collapse to
/// the chain's earliest member via DFS on the transposed BB graph.

#include <gtest/gtest.h>

#include <algorithm>

#include "rispp/forecast/placement.hpp"

namespace {

using namespace rispp::forecast;
using rispp::cfg::BBGraph;
using rispp::cfg::BlockId;

FcCandidate cand(BlockId b) {
  FcCandidate c;
  c.block = b;
  c.si_index = 0;
  c.probability = 1.0;
  c.expected_executions = 10;
  return c;
}

bool has_block(const std::vector<ForecastPoint>& fcs, BlockId b) {
  return std::any_of(fcs.begin(), fcs.end(),
                     [&](const ForecastPoint& f) { return f.block == b; });
}

TEST(Placement, SingleCandidateBecomesFc) {
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto fcs = place_forecasts(g, {cand(a)}, 100.0);
  ASSERT_EQ(fcs.size(), 1u);
  EXPECT_EQ(fcs.front().block, a);
}

TEST(Placement, ChainCollapsesToHead) {
  // a → b → c, all candidates, all near: only a (the earliest, giving the
  // most rotation lead time) becomes the FC.
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 10);
  const auto c = g.add_block("c", 10);
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  const auto fcs = place_forecasts(g, {cand(a), cand(b), cand(c)}, 100.0);
  ASSERT_EQ(fcs.size(), 1u);
  EXPECT_EQ(fcs.front().block, a);
}

TEST(Placement, FarGapSplitsChains) {
  // a →(big block)→ c: b's body is 1000 cycles > threshold → two chains.
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 1000);
  const auto c = g.add_block("c", 10);
  g.add_edge(a, b, 1);
  g.add_edge(b, c, 1);
  const auto fcs = place_forecasts(g, {cand(a), cand(b), cand(c)}, 100.0);
  // b is a candidate but far from a (its own body exceeds the threshold);
  // c's predecessor b is far too. Chains: {a}, {b}, {c} → heads a, b, c...
  // except b and c: b's predecessor a IS near (a.cycles = 10), so {a, b} is
  // one chain with head a; c's predecessor b is far → c is its own head.
  EXPECT_TRUE(has_block(fcs, a));
  EXPECT_TRUE(has_block(fcs, c));
  EXPECT_FALSE(has_block(fcs, b));
  EXPECT_EQ(fcs.size(), 2u);
}

TEST(Placement, DiamondKeepsBothBranchHeads) {
  //      a       (not a candidate)
  //     . .
  //    b   c     both candidates, both heads (a is not suitable)
  //     . .
  //      d       candidate, near both → absorbed into the chains
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 10);
  const auto c = g.add_block("c", 10);
  const auto d = g.add_block("d", 10);
  g.add_edge(a, b, 1);
  g.add_edge(a, c, 1);
  g.add_edge(b, d, 1);
  g.add_edge(c, d, 1);
  const auto fcs = place_forecasts(g, {cand(b), cand(c), cand(d)}, 100.0);
  EXPECT_TRUE(has_block(fcs, b));
  EXPECT_TRUE(has_block(fcs, c));
  EXPECT_FALSE(has_block(fcs, d));
  EXPECT_EQ(fcs.size(), 2u);
}

TEST(Placement, CandidateCycleStillEmitsOneFc) {
  // A loop of candidates has no head; one FC must survive anyway.
  BBGraph g;
  const auto a = g.add_block("a", 10);
  const auto b = g.add_block("b", 10);
  g.add_edge(a, b, 1);
  g.add_edge(b, a, 1);
  const auto fcs = place_forecasts(g, {cand(a), cand(b)}, 100.0);
  EXPECT_EQ(fcs.size(), 1u);
}

TEST(Placement, EmptyInput) {
  BBGraph g;
  g.add_block("a", 10);
  EXPECT_TRUE(place_forecasts(g, {}, 100.0).empty());
}

TEST(Placement, AnnotationsSurviveCollapse) {
  BBGraph g;
  const auto a = g.add_block("a", 10);
  auto c = cand(a);
  c.expected_executions = 123;
  c.distance_cycles = 456;
  const auto fcs = place_forecasts(g, {c}, 100.0);
  ASSERT_EQ(fcs.size(), 1u);
  EXPECT_DOUBLE_EQ(fcs.front().expected_executions, 123.0);
  EXPECT_DOUBLE_EQ(fcs.front().distance_cycles, 456.0);
}

}  // namespace
