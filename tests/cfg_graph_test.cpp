#include <gtest/gtest.h>

#include "rispp/cfg/graph.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::cfg;
using rispp::util::PreconditionError;

TEST(BBGraph, BlocksAndEdges) {
  BBGraph g;
  const auto a = g.add_block("a", 10, 100);
  const auto b = g.add_block("b", 20, 60);
  const auto c = g.add_block("c", 30, 40);
  g.add_edge(a, b, 60);
  g.add_edge(a, c, 40);
  EXPECT_EQ(g.block_count(), 3u);
  EXPECT_EQ(g.entry(), a);  // first block is the default entry
  EXPECT_EQ(g.block(b).cycles, 20u);
  EXPECT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.in_edges(c).size(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(BBGraph, EdgeProbabilityFromProfile) {
  BBGraph g;
  const auto a = g.add_block("a", 1, 100);
  const auto b = g.add_block("b", 1, 75);
  const auto c = g.add_block("c", 1, 25);
  g.add_edge(a, b, 75);
  g.add_edge(a, c, 25);
  EXPECT_DOUBLE_EQ(g.edge_probability(0), 0.75);
  EXPECT_DOUBLE_EQ(g.edge_probability(1), 0.25);
}

TEST(BBGraph, UnprofiledBranchIsUniform) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  const auto c = g.add_block("c");
  g.add_edge(a, b, 0);
  g.add_edge(a, c, 0);
  EXPECT_DOUBLE_EQ(g.edge_probability(0), 0.5);
  EXPECT_DOUBLE_EQ(g.edge_probability(1), 0.5);
}

TEST(BBGraph, TransposeReversesEdges) {
  BBGraph g;
  const auto a = g.add_block("a", 5, 10);
  const auto b = g.add_block("b", 6, 10);
  g.add_edge(a, b, 10);
  g.add_si_usage(b, 2, 3);
  const auto t = g.transposed();
  EXPECT_EQ(t.block_count(), 2u);
  EXPECT_EQ(t.out_edges(b).size(), 1u);
  EXPECT_EQ(t.edges()[0].from, b);
  EXPECT_EQ(t.edges()[0].to, a);
  // Blocks, profiles and SI usages survive transposition.
  EXPECT_EQ(t.block(b).si_usages.size(), 1u);
  EXPECT_EQ(t.block(a).cycles, 5u);
}

TEST(BBGraph, SiUsageQueries) {
  BBGraph g;
  const auto a = g.add_block("a", 1, 50);
  const auto b = g.add_block("b", 1, 20);
  g.add_si_usage(a, 0, 2);
  g.add_si_usage(b, 0, 1);
  g.add_si_usage(b, 1, 4);
  EXPECT_EQ(g.usage_sites(0), (std::vector<BlockId>{a, b}));
  EXPECT_EQ(g.usage_sites(1), (std::vector<BlockId>{b}));
  EXPECT_TRUE(g.usage_sites(2).empty());
  // 50·2 + 20·1 = 120 invocations of SI 0.
  EXPECT_EQ(g.total_si_invocations(0), 120u);
  EXPECT_EQ(g.total_si_invocations(1), 80u);
}

TEST(BBGraph, ValidationAndPreconditions) {
  BBGraph g;
  EXPECT_THROW(g.validate(), PreconditionError);  // empty graph
  const auto a = g.add_block("a");
  EXPECT_THROW(g.add_edge(a, 7), PreconditionError);
  EXPECT_THROW(g.add_block("z", 0), PreconditionError);  // zero cycles
  EXPECT_THROW(g.add_si_usage(a, 0, 0), PreconditionError);
  EXPECT_THROW((void)g.block(9), PreconditionError);
}

TEST(BBGraph, SetEntryAndExecCount) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  g.set_entry(b);
  EXPECT_EQ(g.entry(), b);
  g.set_exec_count(a, 123);
  EXPECT_EQ(g.block(a).exec_count, 123u);
}

}  // namespace
