#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rispp/cfg/scc.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::cfg;

TEST(Tarjan, StraightLineIsAllSingletons) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  const auto c = g.add_block("c");
  g.add_edge(a, b);
  g.add_edge(b, c);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count(), 3u);
  EXPECT_FALSE(scc.in_cycle(g, a));
  EXPECT_FALSE(scc.in_cycle(g, b));
  EXPECT_FALSE(scc.in_cycle(g, c));
}

TEST(Tarjan, SimpleLoopIsOneComponent) {
  BBGraph g;
  const auto head = g.add_block("head");
  const auto body = g.add_block("body");
  const auto exit = g.add_block("exit");
  g.add_edge(head, body);
  g.add_edge(body, head);
  g.add_edge(head, exit);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count(), 2u);
  EXPECT_EQ(scc.component_of[head], scc.component_of[body]);
  EXPECT_NE(scc.component_of[head], scc.component_of[exit]);
  EXPECT_TRUE(scc.in_cycle(g, head));
  EXPECT_FALSE(scc.in_cycle(g, exit));
}

TEST(Tarjan, SelfLoopCountsAsCycle) {
  BBGraph g;
  const auto a = g.add_block("a");
  g.add_edge(a, a);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count(), 1u);
  EXPECT_TRUE(scc.in_cycle(g, a));
}

TEST(Tarjan, ComponentIdsAreReverseTopological) {
  // Edge between distinct components must point to a smaller component id.
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  const auto c = g.add_block("c");
  const auto d = g.add_block("d");
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_edge(c, b);  // {b,c} is an SCC
  g.add_edge(c, d);
  const auto scc = tarjan_scc(g);
  for (const auto& e : g.edges()) {
    const auto cf = scc.component_of[e.from];
    const auto ct = scc.component_of[e.to];
    if (cf != ct) EXPECT_GT(cf, ct);
  }
}

TEST(Tarjan, NestedLoopsCollapse) {
  // Outer loop containing an inner loop, all mutually reachable → one SCC.
  BBGraph g;
  const auto outer = g.add_block("outer");
  const auto inner = g.add_block("inner");
  const auto latch = g.add_block("latch");
  const auto exit = g.add_block("exit");
  g.add_edge(outer, inner);
  g.add_edge(inner, inner);
  g.add_edge(inner, latch);
  g.add_edge(latch, outer);
  g.add_edge(latch, exit);
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_of[outer], scc.component_of[inner]);
  EXPECT_EQ(scc.component_of[inner], scc.component_of[latch]);
  EXPECT_NE(scc.component_of[outer], scc.component_of[exit]);
}

TEST(Tarjan, DisconnectedGraphCovered) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  (void)a;
  (void)b;
  const auto scc = tarjan_scc(g);
  EXPECT_EQ(scc.component_count(), 2u);
  // Every block assigned, members partition the blocks.
  std::set<BlockId> seen;
  for (const auto& comp : scc.members)
    for (auto m : comp) EXPECT_TRUE(seen.insert(m).second);
  EXPECT_EQ(seen.size(), g.block_count());
}

TEST(Tarjan, RandomGraphsPartitionAndOrder) {
  rispp::util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    BBGraph g;
    const int n = 2 + static_cast<int>(rng.below(30));
    for (int i = 0; i < n; ++i) g.add_block("b" + std::to_string(i));
    const int edges = static_cast<int>(rng.below(static_cast<std::uint64_t>(3 * n)));
    for (int e = 0; e < edges; ++e)
      g.add_edge(static_cast<BlockId>(rng.below(n)),
                 static_cast<BlockId>(rng.below(n)));
    const auto scc = tarjan_scc(g);
    // Partition property.
    std::set<BlockId> seen;
    for (const auto& comp : scc.members) {
      EXPECT_FALSE(comp.empty());
      for (auto m : comp) EXPECT_TRUE(seen.insert(m).second);
    }
    EXPECT_EQ(seen.size(), g.block_count());
    // Reverse-topological ids on the condensation.
    for (const auto& e : g.edges()) {
      const auto cf = scc.component_of[e.from];
      const auto ct = scc.component_of[e.to];
      if (cf != ct) EXPECT_GT(cf, ct);
    }
  }
}

TEST(Condensation, AggregatesEdgeCounts) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  const auto c = g.add_block("c");
  g.add_edge(a, b, 10);
  g.add_edge(b, a, 9);     // {a,b} SCC — intra edges dropped
  g.add_edge(a, c, 3);
  g.add_edge(b, c, 4);     // both cross to c's component → aggregated
  const auto scc = tarjan_scc(g);
  const auto cond = condense(g, scc);
  ASSERT_EQ(cond.edges.size(), 1u);
  EXPECT_EQ(cond.edges[0].count, 7u);
  EXPECT_EQ(cond.topo_order.size(), scc.component_count());
  // Topological order: sources first.
  EXPECT_EQ(cond.topo_order.front(), scc.component_of[a]);
}

}  // namespace
