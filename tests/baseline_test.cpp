#include <gtest/gtest.h>

#include "rispp/baseline/asip.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::baseline;
using rispp::isa::SiLibrary;

TEST(Asip, DefaultDesignPicksFastestMolecules) {
  const auto lib = SiLibrary::h264();
  const Asip asip(lib);
  EXPECT_EQ(asip.cycles("SATD_4x4"), 12u);
  EXPECT_EQ(asip.cycles("DCT_4x4"), 9u);
  EXPECT_EQ(asip.cycles("HT_4x4"), 8u);
  EXPECT_EQ(asip.cycles("HT_2x2"), 5u);
}

TEST(Asip, ExplicitDesignChoice) {
  const auto lib = SiLibrary::h264();
  const Asip asip(lib, {{"SATD_4x4", 0}});  // minimal molecule by index
  EXPECT_EQ(asip.cycles("SATD_4x4"), 24u);
  EXPECT_EQ(asip.cycles("DCT_4x4"), 9u);  // others default to fastest
}

TEST(Asip, DedicatedAtomsAreSummedNotShared) {
  // The Fig-1 critique: the extensible processor dedicates hardware per SI.
  // A rotating platform needs only sup (fits in max-molecule atoms); the
  // ASIP pays the sum.
  const auto lib = SiLibrary::h264();
  const Asip asip(lib);
  const auto& cat = lib.catalog();
  const auto dedicated = asip.dedicated_atoms();

  rispp::atom::Molecule sup = cat.zero();
  for (const auto& si : lib.sis())
    sup = sup.unite(cat.project_rotatable(asip.chosen(si.name()).atoms));

  EXPECT_TRUE(sup.leq(dedicated));
  EXPECT_GT(dedicated.determinant(), sup.determinant());
}

TEST(Asip, DedicatedSlicesMatchAtomHardware) {
  const auto lib = SiLibrary::h264();
  const Asip asip(lib, {{"SATD_4x4", 0},
                        {"DCT_4x4", 0},
                        {"HT_4x4", 0},
                        {"HT_2x2", 0}});  // all minimal
  // Minimal molecules: SATD (QS1 P1 T1 S1), DCT (QS1 P1 T1), HT4 (P1 T1),
  // HT2 (T1). Dedicated sums: QS2 P3 T4 S1.
  const auto& cat = lib.catalog();
  const auto atoms = asip.dedicated_atoms();
  EXPECT_EQ(atoms[cat.index_of("QuadSub")], 2u);
  EXPECT_EQ(atoms[cat.index_of("Pack")], 3u);
  EXPECT_EQ(atoms[cat.index_of("Transform")], 4u);
  EXPECT_EQ(atoms[cat.index_of("SATD")], 1u);
  EXPECT_EQ(asip.dedicated_atom_count(), 10u);
  // 2·352 + 3·406 + 4·517 + 1·407 = 4,397 slices.
  EXPECT_EQ(asip.dedicated_slices(), 4397u);
}

TEST(Asip, NeverSlowerThanRisppSteadyState) {
  // The ASIP with fastest molecules is the per-SI lower bound RISPP
  // approaches with a full atom budget.
  const auto lib = SiLibrary::h264();
  const Asip asip(lib);
  for (const auto& si : lib.sis()) {
    const auto best = si.best_with_budget(100, lib.catalog());
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(asip.cycles(si.name()), best->cycles);
  }
}

TEST(Asip, RejectsBadDesign) {
  const auto lib = SiLibrary::h264();
  EXPECT_THROW(Asip(lib, {{"SATD_4x4", 99}}), rispp::util::PreconditionError);
  const Asip ok(lib);
  EXPECT_THROW(ok.cycles("NOPE"), rispp::util::PreconditionError);
}

}  // namespace
