/// Session-API redesign seams: the shared_ptr library contract, the Driving
/// enum replacing the old bool pair, and construction-time RtConfig
/// validation. The deprecated shims are exercised here — under pragmas —
/// so they keep compiling (with warnings elsewhere, not errors) until
/// removal.

#include <gtest/gtest.h>

#include "rispp/rt/manager.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using rispp::isa::SiLibrary;
using rispp::rt::RisppManager;
using rispp::rt::RtConfig;
using rispp::sim::Driving;
using rispp::sim::SimConfig;
using rispp::sim::Simulator;
using rispp::util::Error;
using rispp::util::PreconditionError;

TEST(SharedLibrary, ComponentsShareOneSnapshot) {
  const auto lib = rispp::isa::share(SiLibrary::h264());
  const Simulator sim(lib, {});
  const RisppManager mgr(lib, {});
  EXPECT_EQ(sim.library_ptr().get(), lib.get());
  EXPECT_EQ(mgr.library_ptr().get(), lib.get());
  EXPECT_EQ(&mgr.library(), lib.get());
  // share() moved the value into shared ownership; borrow() views a
  // caller-kept instance without taking ownership.
  const auto local = SiLibrary::h264();
  EXPECT_EQ(rispp::isa::borrow(local).get(), &local);
}

TEST(SharedLibrary, NullLibraryIsRejected) {
  EXPECT_THROW(RisppManager(nullptr, {}), PreconditionError);
  EXPECT_THROW(Simulator(nullptr, {}), PreconditionError);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SharedLibrary, DeprecatedReferenceOverloadsStillBind) {
  // The seed API: bare references, caller keeps the library alive. The
  // overloads now wrap a non-owning aliasing shared_ptr around the same
  // object.
  const auto lib = SiLibrary::h264();
  const Simulator sim(lib, {});
  const RisppManager mgr(lib, {});
  EXPECT_EQ(&sim.manager().library(), &lib);
  EXPECT_EQ(&mgr.library(), &lib);
}
#pragma GCC diagnostic pop

TEST(DrivingEnum, ParseAndPrintRoundTrip) {
  EXPECT_EQ(rispp::sim::parse_driving("wakeups"), Driving::Wakeups);
  EXPECT_EQ(rispp::sim::parse_driving("poll-every-switch"),
            Driving::PollEverySwitch);
  EXPECT_STREQ(rispp::sim::to_string(Driving::Wakeups), "wakeups");
  EXPECT_STREQ(rispp::sim::to_string(Driving::PollEverySwitch),
               "poll-every-switch");
  try {
    rispp::sim::parse_driving("sometimes");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("wakeups"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("poll-every-switch"),
              std::string::npos);
  }
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DrivingEnum, DeprecatedBoolSettersRewriteDriving) {
  SimConfig cfg;
  EXPECT_EQ(cfg.driving, Driving::Wakeups);  // default
  cfg.set_poll_every_switch(true);
  EXPECT_EQ(cfg.driving, Driving::PollEverySwitch);
  cfg.set_rotation_wakeups(true);
  EXPECT_EQ(cfg.driving, Driving::Wakeups);
  cfg.set_rotation_wakeups(false);  // the seed's only other mode
  EXPECT_EQ(cfg.driving, Driving::PollEverySwitch);
  cfg.set_poll_every_switch(false);
  EXPECT_EQ(cfg.driving, Driving::Wakeups);
}
#pragma GCC diagnostic pop

TEST(RtConfigValidation, UnknownFactoryKeysThrowListingRegistered) {
  const auto lib = rispp::isa::share(SiLibrary::h264());
  RtConfig bad_selection;
  bad_selection.selection_policy = "greedyy";
  try {
    const RisppManager mgr(lib, bad_selection);
    FAIL() << "expected util::Error";
  } catch (const Error& e) {  // PreconditionError is-a util::Error
    const std::string what = e.what();
    EXPECT_NE(what.find("greedyy"), std::string::npos);
    EXPECT_NE(what.find("greedy"), std::string::npos);
    EXPECT_NE(what.find("exhaustive"), std::string::npos);
  }
  RtConfig bad_replacement;
  bad_replacement.replacement_policy = "fifo";
  try {
    validate(bad_replacement);
    FAIL() << "expected util::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fifo"), std::string::npos);
    EXPECT_NE(what.find("lru"), std::string::npos);
    EXPECT_NE(what.find("round-robin"), std::string::npos);
  }
}

TEST(RtConfigValidation, RangeChecksFireAtConstruction) {
  const auto lib = rispp::isa::share(SiLibrary::h264());
  RtConfig no_containers;
  no_containers.atom_containers = 0;
  EXPECT_THROW(RisppManager(lib, no_containers), PreconditionError);
  RtConfig bad_rate;
  bad_rate.learning_rate = 1.5;
  EXPECT_THROW(validate(bad_rate), PreconditionError);
  EXPECT_NO_THROW(validate(RtConfig{}));
}

}  // namespace
