/// Cycle-attribution profiler: bucket math on hand-built streams, rotation
/// economics (queueing vs transfer, wasted rotations, occupancy timelines),
/// and the attribution invariant — per-task buckets sum exactly to the run
/// span — on the fig06 / fig11 / AES scenarios and under seeded faults.

#include <gtest/gtest.h>

#include "rispp/aes/graph.hpp"
#include "rispp/forecast/forecast_pass.hpp"
#include "rispp/hw/fault.hpp"
#include "rispp/obs/profiler.hpp"
#include "rispp/obs/report.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"
#include "rispp/workload/trace_source.hpp"

namespace {

using namespace rispp::obs;
using rispp::isa::borrow;

Event si_exec(std::uint64_t at, std::int32_t task, std::int64_t si,
              std::uint64_t cycles, bool hw) {
  return {.at = at, .kind = EventKind::SiExecuted, .task = task, .si = si,
          .cycles = cycles, .hardware = hw};
}

/// The tentpole invariant, re-checked from the outside: finalize() already
/// throws on violation, but assert the sums here so a silent change to the
/// check itself cannot pass.
void expect_attribution(const RunReport& r) {
  const auto span = r.span_cycles();
  BucketSet agg;
  for (const auto& t : r.tasks) {
    EXPECT_EQ(t.buckets.total(), span) << "task " << t.task << " (" << t.name
                                       << ") buckets do not sum to the span";
    agg.sw_exec += t.buckets.sw_exec;
    agg.hw_exec += t.buckets.hw_exec;
    agg.plain_compute += t.buckets.plain_compute;
    agg.rotation_stall += t.buckets.rotation_stall;
    agg.idle += t.buckets.idle;
  }
  EXPECT_EQ(agg, r.buckets);
  EXPECT_EQ(r.buckets.total(), span * r.tasks.size());
}

TEST(Profiler, EmptyAndInstantStreamsHaveZeroSpan) {
  // Regression (zero-span division): both degenerate streams must finalize
  // with utilization 0.0 rather than divide by span_cycles() == 0.
  const auto empty = Profiler::profile({}, {});
  EXPECT_EQ(empty.span_cycles(), 0u);
  EXPECT_DOUBLE_EQ(empty.port.utilization, 0.0);
  EXPECT_TRUE(empty.tasks.empty());

  const std::vector<Event> instant = {
      {.at = 42, .kind = EventKind::TaskSwitch, .task = 0}};
  const auto r = Profiler::profile(instant, {});
  EXPECT_EQ(r.span_cycles(), 0u);
  EXPECT_DOUBLE_EQ(r.port.utilization, 0.0);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].buckets.total(), 0u);
}

TEST(Profiler, BucketMathOnAlternatingSlices) {
  const std::vector<Event> events = {
      {.at = 0, .kind = EventKind::TaskSwitch, .task = 0},
      si_exec(100, 0, 0, 50, true),
      {.at = 1000, .kind = EventKind::TaskSwitch, .task = 1},
      si_exec(1200, 1, 0, 544, false),
      {.at = 2000, .kind = EventKind::TaskSwitch, .task = 0},
  };
  const auto r = Profiler::profile(events, {});
  EXPECT_EQ(r.span_cycles(), 2000u);
  ASSERT_EQ(r.tasks.size(), 2u);
  // Task 0 owned [0, 1000) and the empty final slice: 50 hw cycles, the
  // rest of its slices is plain compute, the other task's slice is idle.
  EXPECT_EQ(r.tasks[0].buckets,
            (BucketSet{0, 50, 950, 0, 1000}));
  // Task 1 owned [1000, 2000): one un-stalled SW execution (no rotation in
  // flight anywhere).
  EXPECT_EQ(r.tasks[1].buckets,
            (BucketSet{544, 0, 456, 0, 1000}));
  expect_attribution(r);
  EXPECT_EQ(r.counts.task_switches, 3u);
}

TEST(Profiler, StallRequiresAnInFlightRotationForTheSameSi) {
  const std::vector<Event> events = {
      // Booked at 5, transfer occupies the port over [10, 510).
      {.at = 10, .kind = EventKind::RotationStarted, .container = 1, .si = 0,
       .atom = 0, .cycles = 500, .prev_cycles = 5},
      si_exec(100, 0, 0, 544, false),  // inside the window → stall
      {.at = 510, .kind = EventKind::RotationFinished, .container = 1,
       .si = 0, .atom = 0, .cycles = 500, .prev_cycles = 5},
      si_exec(600, 0, 0, 544, false),  // after completion → plain SW
  };
  const auto r = Profiler::profile(events, {});
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].buckets.rotation_stall, 544u);
  EXPECT_EQ(r.tasks[0].buckets.sw_exec, 544u);
  expect_attribution(r);

  // Port economics: queueing is booking→start, transfer is the span.
  EXPECT_EQ(r.port.busy_cycles, 500u);
  ASSERT_EQ(r.port.queueing.count, 1u);
  EXPECT_EQ(r.port.queueing.min, 5u);
  ASSERT_EQ(r.port.transfer.count, 1u);
  EXPECT_EQ(r.port.transfer.min, 500u);
  EXPECT_EQ(r.counts.rotations, 1u);
}

TEST(Profiler, WastedRotationIsLoadedThenEvictedWithZeroUses) {
  const std::vector<Event> events = {
      {.at = 10, .kind = EventKind::RotationStarted, .container = 0, .si = 0,
       .atom = 0, .cycles = 100, .prev_cycles = 10},
      // Loaded at 110, never executed, given up at 300: wasted.
      {.at = 300, .kind = EventKind::AtomEvicted, .container = 0, .atom = 0},
      {.at = 400, .kind = EventKind::RotationStarted, .container = 0, .si = 1,
       .atom = 1, .cycles = 100, .prev_cycles = 400},
      // Loaded at 500, used once, still resident at stream end: not wasted
      // (the jury is still out when the trace ends).
      si_exec(600, 0, 1, 20, true),
  };
  const auto r = Profiler::profile(events, {});
  EXPECT_EQ(r.counts.wasted_rotations, 1u);
  EXPECT_EQ(r.counts.evictions, 1u);
  ASSERT_EQ(r.containers.size(), 1u);
  const auto& c = r.containers[0];
  EXPECT_EQ(c.rotations, 2u);
  EXPECT_EQ(c.wasted_rotations, 1u);
  ASSERT_EQ(c.occupancy.size(), 2u);
  EXPECT_EQ(c.occupancy[0].from, 110u);
  EXPECT_EQ(c.occupancy[0].to, 300u);
  EXPECT_EQ(c.occupancy[0].uses, 0u);
  EXPECT_EQ(c.occupancy[1].from, 500u);
  EXPECT_EQ(c.occupancy[1].to, 620u);  // stream end: SiExecuted span end
  EXPECT_EQ(c.occupancy[1].uses, 1u);
}

TEST(Profiler, CancelledBookingNeverTouchesThePort) {
  const std::vector<Event> events = {
      {.at = 50, .kind = EventKind::RotationStarted, .container = 1, .si = 0,
       .atom = 0, .cycles = 100, .prev_cycles = 0},
      // Tombstone arrives before the start cycle is reached (the manager's
      // guarantee): the booking dissolves without occupying the port.
      {.at = 10, .kind = EventKind::RotationCancelled, .container = 1,
       .atom = 0, .cycles = 100, .prev_cycles = 50},
  };
  const auto r = Profiler::profile(events, {});
  EXPECT_EQ(r.counts.rotations, 0u);
  EXPECT_EQ(r.counts.rotations_cancelled, 1u);
  EXPECT_EQ(r.port.busy_cycles, 0u);
  EXPECT_EQ(r.port.transfer.count, 0u);
  EXPECT_TRUE(r.containers.empty() || r.containers[0].occupancy.empty());
}

TEST(Profiler, FailedRotationOccupiesThePortButNeverBecomesResident) {
  const std::vector<Event> events = {
      {.at = 10, .kind = EventKind::RotationStarted, .container = 0, .si = 0,
       .atom = 0, .cycles = 100, .prev_cycles = 5},
      // The verdict is stamped at the booking's own completion cycle; the
      // profiler must not first promote the faulty transfer into residency.
      {.at = 110, .kind = EventKind::RotationFailed, .container = 0,
       .atom = 0, .cycles = 100, .prev_cycles = 10},
      {.at = 110, .kind = EventKind::AcQuarantined, .container = 0},
      si_exec(200, 0, 0, 544, false),
  };
  const auto r = Profiler::profile(events, {});
  EXPECT_EQ(r.counts.rotations, 0u);
  EXPECT_EQ(r.counts.rotations_failed, 1u);
  EXPECT_EQ(r.counts.acs_quarantined, 1u);
  EXPECT_EQ(r.port.busy_cycles, 100u);  // the port *was* occupied
  ASSERT_EQ(r.port.transfer.count, 1u);
  for (const auto& c : r.containers) EXPECT_TRUE(c.occupancy.empty());
  expect_attribution(r);
}

TEST(Profiler, ForecastLeadMeasuresSeenToFirstHardwareUse) {
  const std::vector<Event> events = {
      {.at = 0, .kind = EventKind::ForecastSeen, .task = 0, .si = 0},
      si_exec(100, 0, 0, 544, false),  // SW execution does not count
      si_exec(700, 0, 0, 24, true),    // first hardware use: lead = 700
      si_exec(900, 0, 0, 24, true),    // later uses do not re-sample
  };
  const auto r = Profiler::profile(events, {});
  ASSERT_EQ(r.sis.size(), 1u);
  ASSERT_EQ(r.sis[0].forecast_lead.count, 1u);
  EXPECT_EQ(r.sis[0].forecast_lead.min, 700u);
  EXPECT_EQ(r.sis[0].forecast_lead.max, 700u);
  EXPECT_EQ(r.sis[0].all.count, 3u);
  EXPECT_EQ(r.sis[0].hw.count, 2u);
  EXPECT_EQ(r.sis[0].sw.count, 1u);
}

/// The fig06 two-task scenario, reused across the invariant tests below.
void add_fig06_tasks(rispp::sim::Simulator& sim,
                     const rispp::isa::SiLibrary& lib) {
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");
  rispp::sim::Trace a;
  a.push_back(rispp::sim::TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(rispp::sim::TraceOp::compute(10000));
    a.push_back(rispp::sim::TraceOp::si(satd, 50));
  }
  rispp::sim::Trace b;
  b.push_back(rispp::sim::TraceOp::forecast(si0, 50));
  b.push_back(rispp::sim::TraceOp::compute(700000));
  b.push_back(rispp::sim::TraceOp::si(si0, 20));
  b.push_back(rispp::sim::TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(rispp::sim::TraceOp::compute(40000));
    b.push_back(rispp::sim::TraceOp::si(si1, 100));
  }
  b.push_back(rispp::sim::TraceOp::release(si1));
  b.push_back(rispp::sim::TraceOp::si(si0, 20));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
}

TEST(ProfilerInvariant, Fig06Scenario) {
  const auto lib = rispp::isa::SiLibrary::h264();
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  const auto meta = make_trace_meta(lib, cfg, {"A", "B"});
  // Stream live through the profiler *and* record, so the replay path can
  // be checked against the streaming path below.
  TraceRecorder recorder;
  Profiler profiler(meta);
  TeeSink tee(&recorder, &profiler);
  cfg.rt.sink = &tee;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  add_fig06_tasks(sim, lib);
  const auto result = sim.run();

  const auto r = profiler.finalize("fig06");
  expect_attribution(r);
  EXPECT_EQ(r.counts.rotations, result.rotations);
  EXPECT_GT(r.buckets.hw_exec, 0u);
  EXPECT_GT(r.buckets.rotation_stall, 0u);  // A's SW SATD during rotations

  // Streaming and replay are the same code path in different clothes: the
  // replayed report serializes to the same bytes.
  const auto replay = Profiler::profile(recorder.events(), meta, "fig06");
  EXPECT_EQ(write_report(replay), write_report(r));
}

TEST(ProfilerInvariant, Fig11UpgradeStaircase) {
  const auto lib = rispp::isa::SiLibrary::h264();
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  std::vector<std::string> task_names;
  Profiler profiler;  // default meta: indexed fallback names are fine here
  cfg.rt.sink = &profiler;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  for (const auto& si : lib.sis()) {
    rispp::sim::Trace trace;
    trace.push_back(
        rispp::sim::TraceOp::forecast(lib.index_of(si.name()), 2000));
    for (int burst = 0; burst < 40; ++burst) {
      trace.push_back(rispp::sim::TraceOp::compute(20000));
      trace.push_back(rispp::sim::TraceOp::si(lib.index_of(si.name()), 50));
    }
    trace.push_back(
        rispp::sim::TraceOp::release(lib.index_of(si.name())));
    task_names.push_back(si.name());
    sim.add_task({si.name(), trace});
  }
  sim.run();
  const auto r = profiler.finalize("fig11");
  expect_attribution(r);
  EXPECT_EQ(r.tasks.size(), lib.size());
  EXPECT_EQ(r.sis.size(), lib.size());
  // Each SI was forecast and eventually reached hardware: a lead sample.
  for (const auto& si : r.sis) EXPECT_EQ(si.forecast_lead.count, 1u);
}

TEST(ProfilerInvariant, AesGraphWalk) {
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(/*blocks=*/500);
  rispp::forecast::ForecastConfig fcfg;
  fcfg.atom_containers = 6;
  fcfg.alpha = 0.05;
  const auto plan = rispp::forecast::run_forecast_pass(g, lib, fcfg);
  rispp::workload::WalkParams wp;
  wp.seed = 1;
  wp.emit_forecasts = true;
  const auto source = rispp::workload::TraceSource::make_graph_walk(
      g, plan, borrow(lib), wp, nullptr, "aes");

  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  Profiler profiler(make_trace_meta(lib, cfg, {"aes"}));
  cfg.rt.sink = &profiler;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  source->add_to(sim);
  sim.run();
  const auto r = profiler.finalize("aes");
  expect_attribution(r);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].name, "aes");
}

TEST(ProfilerInvariant, Fig06UnderSeededFaults) {
  // The fault_invariant_test configuration: every seed must yield a stream
  // whose failures/cancellations/quarantines the profiler attributes
  // without breaking the per-task sum — and whose failed transfers never
  // become occupancy segments.
  const auto lib = rispp::isa::SiLibrary::h264();
  std::uint64_t total_failed = 0;
  for (std::uint64_t seed : {3ull, 17ull, 4242ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = 6;
    cfg.quantum = 25000;
    cfg.rt.faults = rispp::hw::FaultModel::probabilistic(seed, 0.2, 0.1, 0.1);
    cfg.rt.max_rotation_retries = 2;
    cfg.rt.retry_backoff_cycles = 2000;
    Profiler profiler(make_trace_meta(lib, cfg, {"A", "B"}));
    cfg.rt.sink = &profiler;
    rispp::sim::Simulator sim(borrow(lib), cfg);
    add_fig06_tasks(sim, lib);
    sim.run();
    const auto r = profiler.finalize("fig06-faults");
    expect_attribution(r);
    total_failed += r.counts.rotations_failed;
    // Occupancy timelines stay well-formed under retries and quarantine.
    for (const auto& c : r.containers) {
      std::uint64_t prev_to = 0;
      for (const auto& seg : c.occupancy) {
        EXPECT_LE(seg.from, seg.to) << "container " << c.container;
        EXPECT_GE(seg.from, prev_to) << "container " << c.container;
        prev_to = seg.to;
      }
    }
  }
  // 20% per-transfer failure across three seeded runs: the fault era was
  // actually exercised, not silently absent.
  EXPECT_GT(total_failed, 0u);
}

TEST(ProfilerInvariant, BucketSamplesAreMonotone) {
  const auto lib = rispp::isa::SiLibrary::h264();
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  Profiler profiler(make_trace_meta(lib, cfg, {"A", "B"}));
  cfg.rt.sink = &profiler;
  rispp::sim::Simulator sim(borrow(lib), cfg);
  add_fig06_tasks(sim, lib);
  sim.run();
  const auto& samples = profiler.bucket_samples();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].at, samples[i - 1].at);
    // Running totals only grow.
    EXPECT_GE(samples[i].totals.hw_exec, samples[i - 1].totals.hw_exec);
    EXPECT_GE(samples[i].totals.sw_exec, samples[i - 1].totals.sw_exec);
    EXPECT_GE(samples[i].totals.rotation_stall,
              samples[i - 1].totals.rotation_stall);
  }
}

}  // namespace
