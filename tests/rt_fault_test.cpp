/// Fault-injection tests for the reconfiguration path: the hw::FaultModel /
/// hw::FaultyReconfigPort layer, the RotationScheduler's failure delivery
/// and cancellation semantics, and the manager's retry / backoff /
/// quarantine reaction — including the differential check that the none()
/// model reproduces the fig06 golden trace byte-for-byte.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "rispp/hw/fault.hpp"
#include "rispp/isa/io.hpp"
#include "rispp/obs/trace_export.hpp"
#include "rispp/rt/manager.hpp"
#include "rispp/rt/rotation.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using rispp::hw::FaultModel;
using rispp::hw::FaultyReconfigPort;
using rispp::hw::ReconfigPort;
using rispp::hw::TransferFault;
using rispp::hw::TransferResult;
using rispp::isa::borrow;
using rispp::rt::Cycle;
using rispp::rt::RisppManager;
using rispp::rt::RotationScheduler;
using rispp::rt::RtConfig;
using rispp::rt::RtEvent;

// --- hw::FaultModel ------------------------------------------------------

TEST(FaultModel, NoneIsDisabledAndEveryTransferIsNominal) {
  auto model = FaultModel::none();
  EXPECT_FALSE(model.enabled());
  FaultyReconfigPort port{ReconfigPort{}, FaultModel::none()};
  EXPECT_TRUE(port.fault_free());
  const auto nominal = port.base().rotation_time_cycles(50000, 100.0);
  for (int i = 0; i < 8; ++i) {
    const auto t = port.next_transfer(50000, 100.0);
    EXPECT_EQ(t.cycles, nominal);
    EXPECT_EQ(t.result, TransferResult::Ok);
  }
  // No draw is ever made: the sequence index never advances.
  EXPECT_EQ(port.model().transfers_decided(), 0u);
}

TEST(FaultModel, ProbabilisticIsDeterministicPerSeed) {
  auto a = FaultModel::probabilistic(42, 0.3, 0.2, 0.2);
  auto b = FaultModel::probabilistic(42, 0.3, 0.2, 0.2);
  for (int i = 0; i < 256; ++i) {
    const auto fa = a.next();
    const auto fb = b.next();
    EXPECT_EQ(fa.result, fb.result);
    EXPECT_EQ(fa.stretch, fb.stretch);
  }
  EXPECT_EQ(a.transfers_decided(), 256u);
}

TEST(FaultModel, ProbabilisticCoversEveryOutcome) {
  auto m = FaultModel::probabilistic(7, 0.25, 0.25, 0.25, 3.0);
  int failed = 0, poisoned = 0, degraded = 0, ok = 0;
  for (int i = 0; i < 512; ++i) {
    const auto f = m.next();
    if (f.result == TransferResult::Failed) ++failed;
    else if (f.result == TransferResult::Poisoned) ++poisoned;
    else if (f.stretch > 1.0) ++degraded;
    else ++ok;
  }
  EXPECT_GT(failed, 0);
  EXPECT_GT(poisoned, 0);
  EXPECT_GT(degraded, 0);
  EXPECT_GT(ok, 0);
}

TEST(FaultModel, ValidatesProbabilitiesAndStretch) {
  EXPECT_THROW((void)FaultModel::probabilistic(1, 1.5), rispp::util::Error);
  EXPECT_THROW((void)FaultModel::probabilistic(1, 0.6, 0.6),
               rispp::util::Error);
  EXPECT_THROW((void)FaultModel::probabilistic(1, 0.1, 0.0, 0.1, 0.5),
               rispp::util::Error);
  EXPECT_THROW((void)FaultModel::schedule({{0, {TransferResult::Ok, 0.5}}}),
               rispp::util::Error);
  EXPECT_THROW((void)FaultModel::schedule({{3, {TransferResult::Failed, 1.0}},
                                           {3, {TransferResult::Ok, 1.0}}}),
               rispp::util::Error);
}

TEST(FaultModel, ScheduleAppliesAtExactSequenceIndices) {
  auto m = FaultModel::schedule({{1, {TransferResult::Failed, 1.0}},
                                 {3, {TransferResult::Poisoned, 1.0}}});
  EXPECT_TRUE(m.enabled());
  EXPECT_EQ(m.next().result, TransferResult::Ok);        // seq 0
  EXPECT_EQ(m.next().result, TransferResult::Failed);    // seq 1
  EXPECT_EQ(m.next().result, TransferResult::Ok);        // seq 2
  EXPECT_EQ(m.next().result, TransferResult::Poisoned);  // seq 3
  EXPECT_EQ(m.next().result, TransferResult::Ok);        // seq 4
}

TEST(FaultModel, DegradationStretchesAndNeverShortens) {
  FaultyReconfigPort port{
      ReconfigPort{},
      FaultModel::schedule({{0, {TransferResult::Ok, 2.5}}})};
  const auto nominal = port.base().rotation_time_cycles(50000, 100.0);
  const auto stretched = port.next_transfer(50000, 100.0);
  EXPECT_EQ(stretched.result, TransferResult::Ok);
  EXPECT_EQ(stretched.cycles,
            static_cast<std::uint64_t>(
                std::ceil(static_cast<double>(nominal) * 2.5)));
  EXPECT_GE(stretched.cycles, nominal);
  // Past the schedule: back to nominal.
  EXPECT_EQ(port.next_transfer(50000, 100.0).cycles, nominal);
}

TEST(FaultModel, ToStringCoversEveryResult) {
  EXPECT_STREQ(to_string(TransferResult::Ok), "ok");
  EXPECT_STREQ(to_string(TransferResult::Failed), "failed");
  EXPECT_STREQ(to_string(TransferResult::Poisoned), "poisoned");
}

// --- RotationScheduler ---------------------------------------------------

/// One rotatable atom, one single-molecule SI — enough to steer rotations.
const char* kOneAtomLibrary = R"(
catalog
  atom P slices=100 luts=200 bitstream=50000 rotatable
end

si XA software=1000
  molecule cycles=100 P=1
end
)";

TEST(FaultScheduler, FaultyBookingIsDeliveredExactlyOnceAtCompletion) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RotationScheduler sched(
      FaultyReconfigPort{ReconfigPort{},
                         FaultModel::schedule(
                             {{0, {TransferResult::Failed, 1.0}}})},
      100.0);
  const auto b = sched.schedule(0, 0, lib.catalog(), 0);
  EXPECT_EQ(b.result, TransferResult::Failed);
  EXPECT_TRUE(sched.take_failures(b.done - 1).empty());  // still in flight
  const auto delivered = sched.take_failures(b.done);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].container, 0u);
  EXPECT_EQ(delivered[0].done, b.done);
  EXPECT_TRUE(sched.take_failures(b.done + 1000).empty());  // once only
}

TEST(FaultScheduler, CancelledFaultyBookingIsNeverDelivered) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RotationScheduler sched(
      FaultyReconfigPort{ReconfigPort{},
                         FaultModel::schedule(
                             {{1, {TransferResult::Failed, 1.0}}})},
      100.0);
  const auto ok = sched.schedule(0, 0, lib.catalog(), 0);      // seq 0, Ok
  const auto bad = sched.schedule(0, 0, lib.catalog(), 1);     // seq 1, Failed
  EXPECT_EQ(ok.result, TransferResult::Ok);
  EXPECT_EQ(bad.result, TransferResult::Failed);
  // The faulty transfer is queued behind the port and cancellable.
  EXPECT_TRUE(sched.cancel_pending(1, 0));
  // Cancelled is terminal: its failure must never surface later.
  EXPECT_TRUE(sched.take_failures(bad.done + 1).empty());
  EXPECT_EQ(sched.rotations_performed(), 1u);
  EXPECT_EQ(sched.rotations_cancelled(), 1u);
}

// --- RisppManager reaction ----------------------------------------------

/// Counts terminal rotation events: every RotationStart must be matched by
/// exactly one of Done / Cancelled / Failed once the run is drained.
void expect_rotation_lifecycle_closed(const std::vector<RtEvent>& events) {
  std::uint64_t starts = 0, dones = 0, cancelled = 0, failed = 0;
  for (const auto& e : events) {
    switch (e.kind) {
      case RtEvent::Kind::RotationStart: ++starts; break;
      case RtEvent::Kind::RotationDone: ++dones; break;
      case RtEvent::Kind::RotationCancelled: ++cancelled; break;
      case RtEvent::Kind::RotationFailed: ++failed; break;
      default: break;
    }
  }
  EXPECT_EQ(starts, dones + cancelled + failed)
      << "a rotation was issued but never reached a terminal state";
}

/// Polls the manager at every wakeup until the platform settles.
Cycle drain(RisppManager& mgr, Cycle from) {
  Cycle t = from;
  for (int guard = 0; guard < 10000; ++guard) {
    const auto wake = mgr.next_wakeup(t);
    if (!wake) return t;
    t = *wake;
    mgr.poll(t);
  }
  ADD_FAILURE() << "manager did not settle within the drain guard";
  return t;
}

TEST(FaultRecovery, FailedRotationBacksOffThenRetriesAndRecovers) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RtConfig cfg;
  cfg.atom_containers = 1;
  cfg.faults =
      FaultModel::schedule({{0, {TransferResult::Failed, 1.0}}});
  cfg.max_rotation_retries = 3;
  cfg.retry_backoff_cycles = 1000;
  RisppManager mgr(borrow(lib), cfg);

  mgr.forecast(lib.index_of("XA"), 1000, 1.0, 0);
  ASSERT_EQ(mgr.rotations_performed(), 1u);
  const auto first_done = mgr.next_wakeup(0);
  ASSERT_TRUE(first_done.has_value());

  // The failure is only discovered when the transfer window ends.
  mgr.poll(*first_done - 1);
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 0u);
  mgr.poll(*first_done);
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 1u);
  EXPECT_EQ(mgr.counters().get("rotation_retries"), 1u);
  EXPECT_EQ(mgr.counters().get("acs_quarantined"), 0u);
  // The container ended empty and is blocked for the backoff window — no
  // retry may be issued yet.
  EXPECT_EQ(mgr.rotations_performed(), 1u);
  EXPECT_FALSE(mgr.containers().at(0).atom.has_value());
  EXPECT_FALSE(mgr.containers().at(0).loading.has_value());
  EXPECT_EQ(mgr.containers().at(0).blocked_until,
            *first_done + cfg.retry_backoff_cycles);

  // The backoff expiry is a wakeup; polling there issues the retry.
  const auto unblock = mgr.next_wakeup(*first_done);
  ASSERT_TRUE(unblock.has_value());
  EXPECT_EQ(*unblock, *first_done + cfg.retry_backoff_cycles);
  mgr.poll(*unblock);
  EXPECT_EQ(mgr.rotations_performed(), 2u);

  // The retry (fault schedule exhausted) completes cleanly: the SI upgrades
  // to hardware and the failure streak resets.
  const auto end = drain(mgr, *unblock);
  EXPECT_TRUE(mgr.execute(lib.index_of("XA"), end + 1).hardware);
  EXPECT_EQ(mgr.containers().at(0).fail_streak, 0u);
  expect_rotation_lifecycle_closed(mgr.events());
}

TEST(FaultRecovery, PoisonedTransferCountsSeparately) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RtConfig cfg;
  cfg.atom_containers = 1;
  cfg.faults =
      FaultModel::schedule({{0, {TransferResult::Poisoned, 1.0}}});
  RisppManager mgr(borrow(lib), cfg);

  mgr.forecast(lib.index_of("XA"), 1000, 1.0, 0);
  const auto done = mgr.next_wakeup(0);
  ASSERT_TRUE(done.has_value());
  // The poisoned Atom must never become available — even when the failure
  // is discovered by an execution rather than a poll.
  const auto exec = mgr.execute(lib.index_of("XA"), *done);
  EXPECT_FALSE(exec.hardware);
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 1u);
  EXPECT_EQ(mgr.counters().get("rotations_poisoned"), 1u);
  EXPECT_TRUE(mgr.available_atoms(*done).is_zero());
}

TEST(FaultRecovery, RepeatedFailuresQuarantineTheContainer) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RtConfig cfg;
  cfg.atom_containers = 1;
  cfg.faults = FaultModel::probabilistic(11, 1.0);  // every transfer fails
  cfg.max_rotation_retries = 1;
  cfg.retry_backoff_cycles = 100;
  RisppManager mgr(borrow(lib), cfg);

  mgr.forecast(lib.index_of("XA"), 1000, 1.0, 0);
  const auto end = drain(mgr, 0);

  // Initial attempt + one retry, both failed; the second failure exceeds
  // the retry budget and quarantines the lone container.
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 2u);
  EXPECT_EQ(mgr.counters().get("rotation_retries"), 1u);
  EXPECT_EQ(mgr.counters().get("acs_quarantined"), 1u);
  EXPECT_TRUE(mgr.containers().at(0).quarantined);
  EXPECT_EQ(mgr.containers().usable_count(), 0u);
  EXPECT_EQ(mgr.rotations_performed(), 2u);  // no further attempts

  // Forward progress is never lost: the SI still executes in software.
  const auto exec = mgr.execute(lib.index_of("XA"), end + 1);
  EXPECT_FALSE(exec.hardware);
  EXPECT_EQ(exec.cycles, 1000u);

  bool saw_quarantine_event = false;
  for (const auto& e : mgr.events())
    if (e.kind == RtEvent::Kind::AcQuarantined) saw_quarantine_event = true;
  EXPECT_TRUE(saw_quarantine_event);
  expect_rotation_lifecycle_closed(mgr.events());
}

TEST(FaultRecovery, BackoffGrowsExponentiallyWithTheStreak) {
  const auto lib = rispp::isa::parse_si_library(kOneAtomLibrary);
  RtConfig cfg;
  cfg.atom_containers = 1;
  cfg.faults = FaultModel::probabilistic(11, 1.0);
  cfg.max_rotation_retries = 3;
  cfg.retry_backoff_cycles = 1000;
  RisppManager mgr(borrow(lib), cfg);

  mgr.forecast(lib.index_of("XA"), 1000, 1.0, 0);
  std::vector<Cycle> windows;  // blocked_until − failed_at per failure
  Cycle t = 0;
  Cycle last_failed = 0;
  for (int guard = 0; guard < 100 && !mgr.containers().at(0).quarantined;
       ++guard) {
    const auto wake = mgr.next_wakeup(t);
    ASSERT_TRUE(wake.has_value());
    t = *wake;
    const auto failed_before = mgr.counters().get("rotations_failed");
    mgr.poll(t);
    if (mgr.counters().get("rotations_failed") > failed_before &&
        !mgr.containers().at(0).quarantined) {
      windows.push_back(mgr.containers().at(0).blocked_until - t);
      last_failed = t;
    }
  }
  (void)last_failed;
  ASSERT_EQ(windows.size(), 3u);  // failures 1..3 back off; the 4th quarantines
  EXPECT_EQ(windows[0], 1000u);
  EXPECT_EQ(windows[1], 2000u);
  EXPECT_EQ(windows[2], 4000u);
}

// --- cancel-stale interaction (bugfix-sweep audit) -----------------------

/// Three-instance molecule: one forecast issues three serialized rotations,
/// so a Failed transfer can sit between two clean (tombstoned) ones.
const char* kThreeAtomLibrary = R"(
catalog
  atom P slices=100 luts=200 bitstream=50000 rotatable
end

si XA software=1000
  molecule cycles=100 P=3
end
)";

TEST(FaultCancelStale, FailedBetweenTwoDonesDoesNotSkipTombstones) {
  const auto lib = rispp::isa::parse_si_library(kThreeAtomLibrary);
  RtConfig cfg;
  cfg.atom_containers = 3;
  cfg.cancel_stale_rotations = true;
  cfg.faults =
      FaultModel::schedule({{1, {TransferResult::Failed, 1.0}}});
  RisppManager mgr(borrow(lib), cfg);

  // One forecast → three serialized transfers: seq 0 Ok (tombstoned Done),
  // seq 1 Failed (no tombstone), seq 2 Ok (tombstoned Done).
  mgr.forecast(lib.index_of("XA"), 1000, 1.0, 0);
  ASSERT_EQ(mgr.rotations_performed(), 3u);
  std::uint64_t dones = 0;
  for (const auto& e : mgr.events())
    if (e.kind == RtEvent::Kind::RotationDone) ++dones;
  ASSERT_EQ(dones, 2u) << "a faulty booking must not pre-record a Done";

  // Releasing the demand before the second transfer starts cancels both
  // queued bookings — the Failed one (whose pending failure must die with
  // it) and the last Ok one (whose tombstoned Done is erased by index, with
  // the Failed booking sitting between the two tombstoned events).
  mgr.forecast_release(lib.index_of("XA"), 1);
  EXPECT_EQ(mgr.rotations_cancelled(), 2u);
  EXPECT_EQ(mgr.rotations_performed(), 1u);

  const auto end = drain(mgr, 1);
  (void)end;
  // The cancelled faulty transfer never reports: only terminated cleanly.
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 0u);

  dones = 0;
  std::optional<unsigned> done_container;
  for (const auto& e : mgr.events())
    if (e.kind == RtEvent::Kind::RotationDone) {
      ++dones;
      done_container = e.container;
    }
  EXPECT_EQ(dones, 1u) << "exactly the first transfer's Done must survive";
  EXPECT_EQ(done_container, std::optional<unsigned>(0u));
  expect_rotation_lifecycle_closed(mgr.events());
}

// --- zero-fault differential --------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The fig06 scenario of rt_kernel_test, with the fault subsystem
/// explicitly configured (none() model + non-default retry knobs): the
/// recorded trace must be byte-identical to the pre-fault golden.
TEST(FaultDifferential, NoneModelReproducesFig06GoldenByteForByte) {
  const auto lib = rispp::isa::SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");

  rispp::obs::TraceRecorder recorder;
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  cfg.rt.sink = &recorder;
  cfg.rt.faults = FaultModel::none();
  cfg.rt.max_rotation_retries = 7;     // retry knobs are dead config
  cfg.rt.retry_backoff_cycles = 12345; // without a fault model
  rispp::sim::Simulator sim(borrow(lib), cfg);

  rispp::sim::Trace a;
  a.push_back(rispp::sim::TraceOp::label(
      "T0: steady state — A forecasts SATD_4x4"));
  a.push_back(rispp::sim::TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(rispp::sim::TraceOp::compute(10000));
    a.push_back(rispp::sim::TraceOp::si(satd, 50));
  }
  rispp::sim::Trace b;
  b.push_back(rispp::sim::TraceOp::forecast(si0, 50));
  b.push_back(rispp::sim::TraceOp::compute(700000));
  b.push_back(rispp::sim::TraceOp::si(si0, 20));
  b.push_back(rispp::sim::TraceOp::label(
      "T1: B forecasts the more important SI1"));
  b.push_back(rispp::sim::TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(rispp::sim::TraceOp::compute(40000));
    b.push_back(rispp::sim::TraceOp::si(si1, 100));
  }
  b.push_back(rispp::sim::TraceOp::label(
      "T2: forecast states SI1 no longer needed"));
  b.push_back(rispp::sim::TraceOp::release(si1));
  b.push_back(rispp::sim::TraceOp::label(
      "T3: B's SI0 reuses containers now owned by A"));
  b.push_back(rispp::sim::TraceOp::si(si0, 20));
  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});

  (void)sim.run();
  const auto path = ::testing::TempDir() + "rispp_fig06_nofault.csv";
  rispp::obs::write_trace_file(path, recorder.events(),
                               make_trace_meta(lib, cfg, {"A", "B"}));
  const auto golden =
      read_file(std::string(RISPP_TEST_DATA_DIR) + "/fig06_golden.csv");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(read_file(path), golden)
      << "FaultModel::none() diverged from the fault-free event stream";
  EXPECT_EQ(sim.manager().counters().get("rotations_failed"), 0u);
  EXPECT_EQ(sim.manager().counters().get("rotations_degraded"), 0u);
}

}  // namespace
