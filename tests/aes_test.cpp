#include <gtest/gtest.h>

#include "rispp/aes/aes128.hpp"
#include "rispp/aes/graph.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::aes;

// FIPS-197 Appendix B: single-block example.
const Key kFipsKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
const Block kFipsPlain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                          0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
const Block kFipsCipher = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                           0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};

// FIPS-197 Appendix C.1 (AES-128 known answer).
const Key kKatKey = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
const Block kKatPlain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                         0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
const Block kKatCipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};

TEST(Aes128, Fips197AppendixBVector) {
  const auto ks = expand_key(kFipsKey);
  EXPECT_EQ(encrypt_block(kFipsPlain, ks), kFipsCipher);
}

TEST(Aes128, Fips197AppendixC1Vector) {
  const auto ks = expand_key(kKatKey);
  EXPECT_EQ(encrypt_block(kKatPlain, ks), kKatCipher);
}

TEST(Aes128, DecryptInvertsEncrypt) {
  const auto ks = expand_key(kFipsKey);
  EXPECT_EQ(decrypt_block(kFipsCipher, ks), kFipsPlain);
  EXPECT_EQ(decrypt_block(encrypt_block(kKatPlain, ks), ks), kKatPlain);
}

TEST(Aes128, KeyExpansionFirstAndLastWords) {
  // FIPS-197 A.1: w4 = a0fafe17, w43 = b6630ca6.
  const auto ks = expand_key(kFipsKey);
  EXPECT_EQ(ks[16], 0xa0);
  EXPECT_EQ(ks[17], 0xfa);
  EXPECT_EQ(ks[18], 0xfe);
  EXPECT_EQ(ks[19], 0x17);
  EXPECT_EQ(ks[172], 0xb6);
  EXPECT_EQ(ks[173], 0x63);
  EXPECT_EQ(ks[174], 0x0c);
  EXPECT_EQ(ks[175], 0xa6);
}

TEST(Aes128, EcbRoundTrip) {
  std::vector<std::uint8_t> plain(160);
  for (std::size_t i = 0; i < plain.size(); ++i)
    plain[i] = static_cast<std::uint8_t>(i * 7);
  std::vector<std::uint8_t> cipher(plain.size()), back(plain.size());
  encrypt_ecb(plain.data(), cipher.data(), plain.size(), kKatKey);
  EXPECT_NE(cipher, plain);
  decrypt_ecb(cipher.data(), back.data(), cipher.size(), kKatKey);
  EXPECT_EQ(back, plain);
}

TEST(Aes128, EcbRejectsPartialBlocks) {
  std::vector<std::uint8_t> buf(17);
  EXPECT_THROW(encrypt_ecb(buf.data(), buf.data(), 17, kKatKey),
               rispp::util::PreconditionError);
}

TEST(AesSiLibrary, StructureAndSharing) {
  const auto lib = si_library();
  EXPECT_EQ(lib.size(), 3u);
  EXPECT_EQ(lib.catalog().size(), 4u);
  // SBox is shared between SUBBYTES and KEYEXPAND — cross-SI atom reuse.
  const auto sbox = lib.catalog().index_of("SBox");
  EXPECT_GT(lib.find("SUBBYTES").options().front().atoms[sbox], 0u);
  EXPECT_GT(lib.find("KEYEXPAND").options().front().atoms[sbox], 0u);
  // Every SI's hardware beats its software molecule.
  for (const auto& si : lib.sis())
    for (const auto& o : si.options())
      EXPECT_LT(o.cycles, si.software_cycles());
}

TEST(AesGraph, StructureMirrorsTheImplementation) {
  AesGraphIds ids{};
  const auto g = build_graph(1000, &ids);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.entry(), ids.entry);
  EXPECT_EQ(g.block(ids.round_loop_head).exec_count, 9000u);
  EXPECT_EQ(g.block(ids.final_round).exec_count, 1000u);
  EXPECT_EQ(g.block(ids.key_expand_loop).exec_count, 40u);
}

TEST(AesGraph, ProfileIsFlowConsistent) {
  // For every block: executions in = executions out (source/sink ±1).
  AesGraphIds ids{};
  const auto g = build_graph(500, &ids);
  for (rispp::cfg::BlockId b = 0; b < g.block_count(); ++b) {
    std::uint64_t in = 0, out = 0;
    for (auto ei : g.in_edges(b)) in += g.edges()[ei].count;
    for (auto ei : g.out_edges(b)) out += g.edges()[ei].count;
    if (b == g.entry()) in += 1;       // program entry
    if (g.out_edges(b).empty()) continue;  // sink
    EXPECT_EQ(in, g.block(b).exec_count) << g.block(b).name;
    EXPECT_EQ(out, g.block(b).exec_count) << g.block(b).name;
  }
}

TEST(AesGraph, SiUsageSitesPresent) {
  const auto lib = si_library();
  AesGraphIds ids{};
  const auto g = build_graph(100, &ids);
  EXPECT_EQ(g.usage_sites(lib.index_of("MIXCOLUMNS")),
            (std::vector<rispp::cfg::BlockId>{ids.mixcolumns}));
  // SUBBYTES is used in the round body and the final round.
  EXPECT_EQ(g.usage_sites(lib.index_of("SUBBYTES")).size(), 2u);
  // 9·100 + 100 final-round invocations.
  EXPECT_EQ(g.total_si_invocations(lib.index_of("SUBBYTES")), 1000u);
}

TEST(AesGraph, ProfileMatchesInstrumentedExecution) {
  // The BB-graph's hand-calibrated profile weights must equal what the real
  // cipher actually executes — this is what makes the Fig-3 artifact an
  // honest substitute for the authors' profiling tool-chain.
  constexpr std::uint64_t kBlocks = 137;
  std::vector<std::uint8_t> buf(16 * kBlocks, 0xAB);
  std::vector<std::uint8_t> out(buf.size());
  StageCounters counters;
  encrypt_ecb_counted(buf.data(), out.data(), buf.size(), kKatKey, counters);

  AesGraphIds ids{};
  const auto g = build_graph(kBlocks, &ids);
  EXPECT_EQ(g.block(ids.block_loop_head).exec_count, counters.blocks);
  EXPECT_EQ(g.block(ids.subbytes_shiftrows).exec_count, counters.rounds);
  EXPECT_EQ(g.block(ids.mixcolumns).exec_count, counters.mixcolumns);
  EXPECT_EQ(g.block(ids.final_round).exec_count, counters.final_rounds);
  EXPECT_EQ(g.block(ids.key_expand_loop).exec_count,
            counters.key_schedule_words);
  // The instrumented path must still encrypt correctly.
  std::vector<std::uint8_t> plain_again(buf.size());
  decrypt_ecb(out.data(), plain_again.data(), out.size(), kKatKey);
  EXPECT_EQ(plain_again, buf);
}

TEST(AesGraph, RejectsZeroBlocks) {
  EXPECT_THROW(build_graph(0), rispp::util::PreconditionError);
}

}  // namespace
