#include <gtest/gtest.h>

#include <vector>

#include "rispp/util/log.hpp"

namespace {

using namespace rispp::util;

struct CapturedLine {
  LogLevel level;
  std::string message;
};

class LogCapture : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_level(LogLevel::Trace);
    Log::set_sink([this](LogLevel lvl, const std::string& msg) {
      lines_.push_back({lvl, msg});
    });
  }
  void TearDown() override {
    Log::reset_sink();
    Log::set_level(LogLevel::Warn);  // the default benches rely on
  }
  std::vector<CapturedLine> lines_;
};

TEST_F(LogCapture, MacroRoutesToSink) {
  RISPP_INFO << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].level, LogLevel::Info);
  EXPECT_EQ(lines_[0].message, "hello 42");
}

TEST_F(LogCapture, LevelFilters) {
  Log::set_level(LogLevel::Warn);
  RISPP_DEBUG << "dropped";
  RISPP_TRACE << "dropped too";
  RISPP_WARN << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].message, "kept");
}

TEST_F(LogCapture, EnabledMatchesLevel) {
  Log::set_level(LogLevel::Info);
  EXPECT_FALSE(Log::enabled(LogLevel::Debug));
  EXPECT_TRUE(Log::enabled(LogLevel::Info));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
}

TEST_F(LogCapture, OffSilencesEverything) {
  Log::set_level(LogLevel::Off);
  RISPP_WARN << "nope";
  Log::write(LogLevel::Error, "also nope");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogCapture, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::Trace), "trace");
  EXPECT_STREQ(Log::level_name(LogLevel::Error), "error");
  EXPECT_STREQ(Log::level_name(LogLevel::Off), "off");
}

}  // namespace
