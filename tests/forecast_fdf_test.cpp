/// The Forecast Decision Function (paper §4.1, Fig 4): more expected SI
/// executions must be demanded when the block is too close (rotation can't
/// finish) or too far (Atom Containers blocked), with an energy-efficiency
/// offset scaled by α.

#include <gtest/gtest.h>

#include "rispp/forecast/fdf.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::forecast;
using rispp::util::PreconditionError;

FdfParams base_params() {
  FdfParams p;
  p.t_rot_cycles = 85000;   // ≈850 µs at 100 MHz, Table-1 magnitude
  p.t_sw_cycles = 544;      // SATD software molecule
  p.t_hw_cycles = 24;
  p.rotation_energy = 7650;      // power×time model units
  p.energy_sw_per_exec = 1088;
  p.energy_hw_per_exec = 62;
  p.alpha = 1.0;
  return p;
}

TEST(Fdf, OffsetIsEnergyBreakEvenTimesAlpha) {
  auto p = base_params();
  const Fdf fdf(p);
  EXPECT_NEAR(fdf.offset(), 7650.0 / (1088 - 62), 1e-9);
  p.alpha = 2.5;
  EXPECT_NEAR(Fdf(p).offset(), 2.5 * 7650.0 / (1088 - 62), 1e-9);
}

TEST(Fdf, PlateauEqualsOffset) {
  // Between T_Rot and the far knee the requirement bottoms out at offset.
  const Fdf fdf(base_params());
  const double t = 3.0 * base_params().t_rot_cycles;
  EXPECT_NEAR(fdf(1.0, t), fdf.offset(), 1e-9);
}

TEST(Fdf, NearBranchGrowsAsDistanceShrinks) {
  const Fdf fdf(base_params());
  const double trot = base_params().t_rot_cycles;
  const double at_01 = fdf(1.0, 0.1 * trot);
  const double at_05 = fdf(1.0, 0.5 * trot);
  const double at_10 = fdf(1.0, 1.0 * trot);
  EXPECT_GT(at_01, at_05);
  EXPECT_GT(at_05, at_10);
  // At t = T_Rot the near term vanishes.
  EXPECT_NEAR(at_10, fdf.offset(), 1e-9);
  // Fig-4 magnitude: at t = 0.1·T_Rot the requirement is hundreds of
  // usages for this T_Rot/T_SW ratio.
  EXPECT_GT(at_01, 100.0);
}

TEST(Fdf, FarBranchGrowsBeyondKnee) {
  const Fdf fdf(base_params());
  const double trot = base_params().t_rot_cycles;
  const double at_10 = fdf(1.0, 10.0 * trot);   // at the knee
  const double at_40 = fdf(1.0, 40.0 * trot);
  const double at_100 = fdf(1.0, 100.0 * trot);
  EXPECT_NEAR(at_10, fdf.offset(), 1e-9);
  EXPECT_GT(at_40, at_10);
  EXPECT_GT(at_100, at_40);
}

TEST(Fdf, LowerProbabilityDemandsMoreExecutions) {
  const Fdf fdf(base_params());
  const double trot = base_params().t_rot_cycles;
  for (double t : {0.2 * trot, 50.0 * trot}) {
    EXPECT_GT(fdf(0.4, t), fdf(0.7, t));
    EXPECT_GT(fdf(0.7, t), fdf(1.0, t));
  }
}

TEST(Fdf, MonotoneSweepAcrossFigure4Grid) {
  // Property sweep over the Fig-4 axes: decreasing in p for every t;
  // U-shaped in t for every p (non-increasing before the plateau,
  // non-decreasing after the knee).
  const Fdf fdf(base_params());
  const double trot = base_params().t_rot_cycles;
  const double rels[] = {0.1, 0.2, 0.4, 0.6, 1.0, 1.6, 2.5, 4.0,
                         6.3, 10.0, 15.8, 25.1, 39.8, 63.1, 100.0};
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    double prev = 1e18;
    for (double rel : rels) {
      const double v = fdf(p, rel * trot);
      if (rel <= 1.0) {
        EXPECT_LE(v, prev + 1e-9) << "p=" << p << " rel=" << rel;
      }
      prev = v;
    }
    double prev_far = 0;
    for (double rel : rels) {
      if (rel < 10.0) continue;
      const double v = fdf(p, rel * trot);
      EXPECT_GE(v, prev_far - 1e-9);
      prev_far = v;
    }
  }
}

TEST(Fdf, ParameterValidation) {
  auto p = base_params();
  p.t_rot_cycles = 0;
  EXPECT_THROW(Fdf{p}, PreconditionError);
  p = base_params();
  p.t_hw_cycles = p.t_sw_cycles;  // hardware not faster
  EXPECT_THROW(Fdf{p}, PreconditionError);
  p = base_params();
  p.energy_hw_per_exec = p.energy_sw_per_exec;  // no energy gain
  EXPECT_THROW(Fdf{p}, PreconditionError);
  const Fdf ok(base_params());
  EXPECT_THROW(ok(0.0, 100.0), PreconditionError);
  EXPECT_THROW(ok(1.1, 100.0), PreconditionError);
  EXPECT_THROW(ok(0.5, -1.0), PreconditionError);
}

}  // namespace
