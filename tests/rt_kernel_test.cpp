/// Event-driven reallocation kernel tests: the refactored plan→gate→
/// cancel-stale→issue pipeline must reproduce the seed simulator's Fig-6
/// event stream byte-for-byte, the plan cache must invalidate on exactly
/// the right triggers, and Molecule-upgrade detection must not leak across
/// tasks.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "rispp/isa/io.hpp"
#include "rispp/obs/trace_export.hpp"
#include "rispp/rt/manager.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"

namespace {

using namespace rispp::sim;
using rispp::rt::RisppManager;
using rispp::rt::RtConfig;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The exact Fig-6 scenario of bench/fig06_runtime_scenario.cpp (two H.264
/// tasks on six shared containers) — the seed's recorded trace for it is
/// checked in under tests/data/.
void add_fig06_tasks(Simulator& sim, const rispp::isa::SiLibrary& lib) {
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");

  Trace a;
  a.push_back(TraceOp::label("T0: steady state — A forecasts SATD_4x4"));
  a.push_back(TraceOp::forecast(satd, 5000));
  for (int i = 0; i < 120; ++i) {
    a.push_back(TraceOp::compute(10000));
    a.push_back(TraceOp::si(satd, 50));
  }

  Trace b;
  b.push_back(TraceOp::forecast(si0, 50));
  b.push_back(TraceOp::compute(700000));
  b.push_back(TraceOp::si(si0, 20));
  b.push_back(TraceOp::label("T1: B forecasts the more important SI1"));
  b.push_back(TraceOp::forecast(si1, 2000000));
  for (int i = 0; i < 8; ++i) {
    b.push_back(TraceOp::compute(40000));
    b.push_back(TraceOp::si(si1, 100));
  }
  b.push_back(TraceOp::label("T2: forecast states SI1 no longer needed"));
  b.push_back(TraceOp::release(si1));
  b.push_back(TraceOp::label("T3: B's SI0 reuses containers now owned by A"));
  b.push_back(TraceOp::si(si0, 20));

  sim.add_task({"A", std::move(a)});
  sim.add_task({"B", std::move(b)});
}

std::string run_fig06_csv(bool poll_every_switch, const std::string& path) {
  const auto lib = rispp::isa::SiLibrary::h264();
  rispp::obs::TraceRecorder recorder;
  SimConfig cfg;
  cfg.rt.atom_containers = 6;
  cfg.quantum = 25000;
  cfg.rt.sink = &recorder;
  cfg.driving =
      poll_every_switch ? Driving::PollEverySwitch : Driving::Wakeups;
  Simulator sim(borrow(lib), cfg);
  add_fig06_tasks(sim, lib);
  (void)sim.run();
  rispp::obs::write_trace_file(path, recorder.events(),
                               make_trace_meta(lib, cfg, {"A", "B"}));
  return read_file(path);
}

TEST(KernelGoldenTrace, Fig06EventStreamMatchesSeedByteForByte) {
  const auto csv =
      run_fig06_csv(false, ::testing::TempDir() + "rispp_fig06_wakeup.csv");
  const auto golden = read_file(std::string(RISPP_TEST_DATA_DIR) +
                                "/fig06_golden.csv");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(csv, golden)
      << "refactored kernel diverged from the seed fig06 event stream";
}

TEST(KernelGoldenTrace, WakeupDrivingEqualsEverySwitchPolling) {
  const auto wakeup =
      run_fig06_csv(false, ::testing::TempDir() + "rispp_fig06_w.csv");
  const auto polled =
      run_fig06_csv(true, ::testing::TempDir() + "rispp_fig06_p.csv");
  EXPECT_EQ(wakeup, polled);
}

class PlanCache : public ::testing::Test {
 protected:
  rispp::isa::SiLibrary lib_ = rispp::isa::SiLibrary::h264();
  RtConfig cfg_;

  std::uint64_t plans(const RisppManager& mgr) const {
    return mgr.counters().get("selector_plans");
  }
};

TEST_F(PlanCache, ForecastDirtiesThePlan) {
  RisppManager mgr(borrow(lib_), cfg_);
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  EXPECT_EQ(plans(mgr), 1u);
  mgr.forecast(lib_.index_of("DCT_4x4"), 100, 1.0, 0);
  EXPECT_EQ(plans(mgr), 2u);
}

TEST_F(PlanCache, ReleaseDirtiesThePlan) {
  RisppManager mgr(borrow(lib_), cfg_);
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  const auto before = plans(mgr);
  mgr.forecast_release(lib_.index_of("SATD_4x4"), 10);
  EXPECT_EQ(plans(mgr), before + 1);
  // Releasing an SI that holds no active forecast is not a demand change.
  mgr.forecast_release(lib_.index_of("HT_4x4"), 20);
  EXPECT_EQ(plans(mgr), before + 1);
}

TEST_F(PlanCache, UnrelatedPollDoesNotReplan) {
  RisppManager mgr(borrow(lib_), cfg_);
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  const auto before = plans(mgr);
  // Polls before any rotation completes: demand set and committed atoms
  // unchanged, so the cached plan stands.
  mgr.poll(1);
  mgr.poll(2);
  mgr.poll(3);
  EXPECT_EQ(plans(mgr), before);
  EXPECT_GT(mgr.counters().get("reallocations"), before);
}

TEST_F(PlanCache, RotationCompletionDirtiesThePlan) {
  RisppManager mgr(borrow(lib_), cfg_);
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  ASSERT_GT(mgr.rotations_performed(), 0u);
  const auto before = plans(mgr);
  const auto wake = mgr.next_wakeup(0);
  ASSERT_TRUE(wake.has_value());
  mgr.poll(*wake - 1);  // nothing completed yet → cache hit
  EXPECT_EQ(plans(mgr), before);
  mgr.poll(*wake);  // first transfer finished → re-plan
  EXPECT_EQ(plans(mgr), before + 1);
}

/// Two disjoint single-molecule SIs over one container: forecasting B after
/// A forces the lone container to flip, so A's SI oscillates HW ↔ SW.
const char* kTwoTaskLibrary = R"(
catalog
  atom P slices=100 luts=200 bitstream=50000 rotatable
  atom Q slices=100 luts=200 bitstream=50000 rotatable
end

si XA software=1000
  molecule cycles=100 P=1
end

si YB software=500
  molecule cycles=50 Q=1
end
)";

TEST(MoleculeUpgrade, FirstObservationOfAnotherTaskIsNotAnUpgrade) {
  const auto lib = rispp::isa::parse_si_library(kTwoTaskLibrary);
  const auto xa = lib.index_of("XA");
  const auto yb = lib.index_of("YB");

  rispp::obs::TraceRecorder recorder;
  RtConfig cfg;
  cfg.atom_containers = 1;
  cfg.sink = &recorder;
  RisppManager mgr(borrow(lib), cfg);

  // Task 0 brings XA into hardware and executes it.
  mgr.forecast(xa, 1000, 1.0, 0, /*task=*/0);
  rispp::rt::Cycle now = 1'000'000;  // P's transfer completed long ago
  EXPECT_TRUE(mgr.execute(xa, now, /*task=*/0).hardware);

  // Task 1's heavier demand flips the lone container to Q; XA falls back
  // to software for everyone.
  mgr.forecast(yb, 100000, 1.0, now + 1, /*task=*/1);
  now += 1'000'000;  // Q's transfer completed
  EXPECT_FALSE(mgr.execute(xa, now, /*task=*/1).hardware);   // task 1, first
  EXPECT_FALSE(mgr.execute(xa, now + 10, /*task=*/0).hardware);  // task 0

  // Emissions are batched (obs::EventBatch): hosts reading the sink between
  // reallocation boundaries flush first.
  mgr.flush_events();

  unsigned task0_upgrades = 0, task1_upgrades = 0;
  for (const auto& e : recorder.events()) {
    if (e.kind != rispp::obs::EventKind::MoleculeUpgraded) continue;
    e.task == 0 ? ++task0_upgrades : ++task1_upgrades;
  }
  // Task 1 never saw XA before its software execution — nothing upgraded
  // (the seed emitted a spurious event here, inheriting task 0's history).
  EXPECT_EQ(task1_upgrades, 0u);
  // Task 0 genuinely went HW → SW.
  EXPECT_EQ(task0_upgrades, 1u);
}

}  // namespace
