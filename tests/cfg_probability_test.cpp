#include <gtest/gtest.h>

#include "rispp/cfg/probability.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::cfg;

TEST(ReachProbability, TargetItselfIsOne) {
  BBGraph g;
  const auto a = g.add_block("a");
  const auto b = g.add_block("b");
  g.add_edge(a, b, 1);
  const auto p = reach_probability_scc(g, {b});
  EXPECT_DOUBLE_EQ(p[b], 1.0);
  EXPECT_DOUBLE_EQ(p[a], 1.0);  // only path leads to b
}

TEST(ReachProbability, BranchSplitsProbability) {
  //      a --0.75--> b(target)
  //        \-0.25--> c
  BBGraph g;
  const auto a = g.add_block("a", 1, 100);
  const auto b = g.add_block("b", 1, 75);
  const auto c = g.add_block("c", 1, 25);
  g.add_edge(a, b, 75);
  g.add_edge(a, c, 25);
  const auto p = reach_probability_scc(g, {b});
  EXPECT_NEAR(p[a], 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(p[b], 1.0);
  EXPECT_DOUBLE_EQ(p[c], 0.0);
}

TEST(ReachProbability, SerialBranchesMultiply) {
  // a → (0.5) b → (0.5) t; reach(a) = 0.25.
  BBGraph g;
  const auto a = g.add_block("a", 1, 4);
  const auto b = g.add_block("b", 1, 2);
  const auto t = g.add_block("t", 1, 1);
  const auto x = g.add_block("x", 1, 2);
  const auto y = g.add_block("y", 1, 1);
  g.add_edge(a, b, 2);
  g.add_edge(a, x, 2);
  g.add_edge(b, t, 1);
  g.add_edge(b, y, 1);
  const auto p = reach_probability_scc(g, {t});
  EXPECT_NEAR(p[a], 0.25, 1e-12);
  EXPECT_NEAR(p[b], 0.5, 1e-12);
}

TEST(ReachProbability, LoopWithExitGeometricSeries) {
  // loop: head → body (q = 0.9) → head; head → target (0.1 each visit).
  // Markov: p(head) satisfies p = 0.1·1 + 0.9·p(body), p(body) = p(head)
  // → p(head) = 1 (the loop eventually exits to the target a.s.).
  BBGraph g;
  const auto head = g.add_block("head", 1, 10);
  const auto body = g.add_block("body", 1, 9);
  const auto target = g.add_block("t", 1, 1);
  g.add_edge(head, body, 9);
  g.add_edge(head, target, 1);
  g.add_edge(body, head, 9);
  const auto p = reach_probability_scc(g, {target});
  EXPECT_NEAR(p[head], 1.0, 1e-9);
  EXPECT_NEAR(p[body], 1.0, 1e-9);
}

TEST(ReachProbability, LoopWithTwoExitsSplits) {
  // Loop exits to target with 0.1 and to elsewhere with 0.1 per iteration;
  // staying has 0.8. p(head) = 0.1 + 0.8·p(head) → 0.5.
  BBGraph g;
  const auto head = g.add_block("head", 1, 10);
  const auto target = g.add_block("t", 1, 1);
  const auto other = g.add_block("o", 1, 1);
  g.add_edge(head, head, 8);
  g.add_edge(head, target, 1);
  g.add_edge(head, other, 1);
  const auto p = reach_probability_scc(g, {target});
  EXPECT_NEAR(p[head], 0.5, 1e-9);
}

TEST(ReachProbability, SccMatchesIterativeOnRandomGraphs) {
  rispp::util::Xoshiro256 rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    BBGraph g;
    const int n = 3 + static_cast<int>(rng.below(25));
    for (int i = 0; i < n; ++i)
      g.add_block("b" + std::to_string(i), 1 + rng.below(50));
    const int edges = n + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * n)));
    for (int e = 0; e < edges; ++e)
      g.add_edge(static_cast<BlockId>(rng.below(n)),
                 static_cast<BlockId>(rng.below(n)), 1 + rng.below(20));
    std::vector<BlockId> targets{static_cast<BlockId>(rng.below(n))};
    const auto scc_p = reach_probability_scc(g, targets);
    const auto iter_p = reach_probability_iterative(g, targets);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(scc_p[i], iter_p[i], 1e-6) << "trial " << trial << " block " << i;
  }
}

TEST(ReachProbability, ProbabilitiesAreWellFormed) {
  rispp::util::Xoshiro256 rng(99);
  BBGraph g;
  const int n = 40;
  for (int i = 0; i < n; ++i) g.add_block("b" + std::to_string(i));
  for (int e = 0; e < 120; ++e)
    g.add_edge(static_cast<BlockId>(rng.below(n)),
               static_cast<BlockId>(rng.below(n)), 1 + rng.below(9));
  const auto p = reach_probability_scc(g, {5, 17});
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(p[i], 0.0);
    EXPECT_LE(p[i], 1.0);
  }
  EXPECT_DOUBLE_EQ(p[5], 1.0);
  EXPECT_DOUBLE_EQ(p[17], 1.0);
}

TEST(ExpectedExecutions, ProfileEstimator) {
  BBGraph g;
  const auto a = g.add_block("a", 1, 10);   // forecast site, executed 10×
  const auto use = g.add_block("u", 1, 50); // usage site, 2 SIs per exec
  g.add_edge(a, use, 10);
  g.add_si_usage(use, 0, 2);
  // 100 total invocations over 10 forecasts → 10 per reach.
  EXPECT_DOUBLE_EQ(expected_si_executions(g, 0, a), 10.0);
  EXPECT_DOUBLE_EQ(expected_si_executions(g, 0, use), 2.0);
}

TEST(ExpectedExecutions, ZeroProfileGivesZero) {
  BBGraph g;
  const auto a = g.add_block("a", 1, 0);
  g.add_si_usage(a, 0, 1);
  EXPECT_DOUBLE_EQ(expected_si_executions(g, 0, a), 0.0);
}

}  // namespace
