/// Engine-level telemetry contracts: sweep results are byte-identical with
/// telemetry on or off at any --jobs (the observability layer must never
/// perturb rows), per-worker counters account for every evaluated point,
/// heartbeats ride the serialized flush path, and a failing evaluator leaves
/// a well-formed "rispp.flight/1" dump behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "rispp/exp/platform.hpp"
#include "rispp/exp/sink.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/obs/json.hpp"
#include "rispp/obs/telemetry.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::exp;
namespace obs = rispp::obs;

constexpr const char* kGrid =
    "workload=enc;frames=1;mb=8;containers=4,5,6,7;quantum=10000,20000";

/// Runs the standard evaluator over kGrid and returns the spilled CSV.
std::string sweep_csv(unsigned jobs, obs::Telemetry* tel) {
  auto sweep = Sweep::parse_grid(kGrid);
  std::ostringstream csv;
  CsvSpillSink sink(csv);
  Runner::RunOptions opts;
  opts.telemetry = tel;
  run_sim_sweep_into(Platform::builtin("h264_frame"), sweep, jobs, sink,
                     opts);
  return csv.str();
}

TEST(ExpTelemetry, ResultsAreByteIdenticalWithTelemetryOnOrOff) {
  const auto reference = sweep_csv(1, nullptr);
  ASSERT_FALSE(reference.empty());
  for (const unsigned jobs : {1u, 4u}) {
    std::ostringstream heartbeats;
    obs::Telemetry::Config cfg;
    cfg.heartbeat_every = 1;
    cfg.heartbeat_out = &heartbeats;
    obs::Telemetry tel(cfg);
    obs::Telemetry::Binding bind(tel, 0);
    EXPECT_EQ(sweep_csv(jobs, &tel), reference)
        << "telemetry perturbed rows at jobs=" << jobs;
    EXPECT_EQ(sweep_csv(jobs, nullptr), reference)
        << "plain run diverged at jobs=" << jobs;
  }
}

TEST(ExpTelemetry, WorkerCountersAccountForEveryPoint) {
  auto sweep = Sweep::parse_grid(kGrid);
  std::ostringstream csv;
  CsvSpillSink sink(csv);
  RunStats stats;
  Runner::RunOptions opts;
  opts.stats = &stats;
  run_sim_sweep_into(Platform::builtin("h264_frame"), sweep, 4, sink, opts);
  ASSERT_EQ(stats.points_evaluated, 8u);
  ASSERT_EQ(stats.workers.size(), 4u);
  std::uint64_t points = 0, flushed = 0, busy_ns = 0;
  for (const auto& w : stats.workers) {
    points += w.points;
    flushed += w.rows_flushed;
    busy_ns += w.busy_ns;
  }
  EXPECT_EQ(points, stats.points_evaluated);
  EXPECT_EQ(flushed, stats.points_evaluated);
  EXPECT_GT(busy_ns, 0u);
  EXPECT_GT(stats.wall_ns, 0u);
}

TEST(ExpTelemetry, HeartbeatsRideTheFlushPathInOrder) {
  std::ostringstream jsonl;
  obs::Telemetry::Config cfg;
  cfg.heartbeat_every = 1;
  cfg.heartbeat_out = &jsonl;
  obs::Telemetry tel(cfg);
  obs::Telemetry::Binding bind(tel, 0);
  (void)sweep_csv(4, &tel);

  std::istringstream lines(jsonl.str());
  std::string line;
  std::vector<obs::json::Value> records;
  while (std::getline(lines, line)) records.push_back(obs::json::parse(line));
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records.front().at("kind").as_string(), "start");
  EXPECT_EQ(records.back().at("kind").as_string(), "finish");
  EXPECT_EQ(records.back().at("done").as_u64(), 8u);
  EXPECT_EQ(records.back().at("total").as_u64(), 8u);
  // Heartbeat `done` values are strictly increasing: emission happens under
  // the flush lock, in sink order, no matter which worker triggered it.
  std::uint64_t prev = 0;
  for (std::size_t i = 1; i + 1 < records.size(); ++i) {
    const auto done = records[i].at("done").as_u64();
    EXPECT_GT(done, prev);
    prev = done;
  }
}

TEST(ExpTelemetry, FailPointAxisProducesAFlightDumpAndRethrows) {
  const auto flight_path = testing::TempDir() + "/exp_flight_dump.json";
  std::remove(flight_path.c_str());
  obs::Telemetry::Config cfg;
  cfg.flight_path = flight_path;
  obs::Telemetry tel(cfg);
  obs::Telemetry::Binding bind(tel, 0);

  auto sweep = Sweep::parse_grid(std::string(kGrid) + ";fail_point=3");
  std::ostringstream csv;
  CsvSpillSink sink(csv);
  Runner::RunOptions opts;
  opts.telemetry = &tel;
  EXPECT_THROW(run_sim_sweep_into(Platform::builtin("h264_frame"), sweep, 2,
                                  sink, opts),
               rispp::util::PreconditionError);

  std::ifstream in(flight_path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << flight_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::json::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "rispp.flight/1");
  const auto& reason = doc.at("reason").as_string();
  EXPECT_NE(reason.find("evaluator exception"), std::string::npos) << reason;
  EXPECT_NE(reason.find("fail_point"), std::string::npos) << reason;
  EXPECT_FALSE(doc.at("events").items().empty());
}

TEST(ExpTelemetry, ReorderWindowFlagReachesTheRunner) {
  auto sweep = Sweep::parse_grid(kGrid);
  std::ostringstream csv;
  CsvSpillSink sink(csv);
  RunStats stats;
  Runner::RunOptions opts;
  opts.stats = &stats;
  run_sim_sweep_into(Platform::builtin("h264_frame"), sweep, 2, sink, opts,
                     /*reorder_window=*/5);
  EXPECT_EQ(stats.reorder_window, 5u);
}

TEST(ExpTelemetry, SpansCoverEveryEvaluatedPoint) {
  obs::Telemetry tel(obs::Telemetry::Config{});
  obs::Telemetry::Binding bind(tel, 0);
  (void)sweep_csv(2, &tel);
  std::size_t point_spans = 0, sim_spans = 0;
  for (const auto& s : tel.spans()) {
    if (std::string_view(s.name) == "point") ++point_spans;
    if (std::string_view(s.name) == "point.sim") ++sim_spans;
  }
  EXPECT_EQ(point_spans, 8u);
  EXPECT_EQ(sim_spans, 8u);
}

}  // namespace
