#include <gtest/gtest.h>

#include "rispp/isa/atom_catalog.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::isa;
using rispp::atom::Molecule;
using rispp::util::PreconditionError;

TEST(AtomCatalog, H264HasSevenAtomsInTable2Order) {
  const auto cat = AtomCatalog::h264();
  ASSERT_EQ(cat.size(), 7u);
  EXPECT_EQ(cat.at(0).name, "Load");
  EXPECT_EQ(cat.at(1).name, "QuadSub");
  EXPECT_EQ(cat.at(2).name, "Pack");
  EXPECT_EQ(cat.at(3).name, "Transform");
  EXPECT_EQ(cat.at(4).name, "SATD");
  EXPECT_EQ(cat.at(5).name, "Add");
  EXPECT_EQ(cat.at(6).name, "Store");
}

TEST(AtomCatalog, RotatabilityMatchesTable1) {
  // Exactly the four synthesized compute Atoms of Table 1 live in ACs.
  const auto cat = AtomCatalog::h264();
  for (const auto& a : cat.atoms()) {
    const bool compute = a.name == "QuadSub" || a.name == "Pack" ||
                         a.name == "Transform" || a.name == "SATD";
    EXPECT_EQ(a.rotatable, compute) << a.name;
  }
}

TEST(AtomCatalog, IndexLookup) {
  const auto cat = AtomCatalog::h264();
  EXPECT_EQ(cat.index_of("Transform"), 3u);
  EXPECT_TRUE(cat.contains("SATD"));
  EXPECT_FALSE(cat.contains("Nonexistent"));
  EXPECT_THROW(cat.index_of("Nonexistent"), PreconditionError);
}

TEST(AtomCatalog, HardwareAttached) {
  const auto cat = AtomCatalog::h264();
  EXPECT_EQ(cat.at(cat.index_of("Transform")).hardware.slices, 517u);
  EXPECT_EQ(cat.at(cat.index_of("Pack")).hardware.bitstream_bytes, 65713u);
}

TEST(AtomCatalog, ProjectRotatableZeroesStaticComponents) {
  const auto cat = AtomCatalog::h264();
  const Molecule m{4, 3, 2, 1, 1, 5, 6};  // L QS P T S A St
  const auto rot = cat.project_rotatable(m);
  EXPECT_EQ(rot, (Molecule{0, 3, 2, 1, 1, 0, 0}));
  EXPECT_EQ(cat.rotatable_determinant(m), 7u);
}

TEST(AtomCatalog, SatisfiedByIgnoresStaticAtoms) {
  const auto cat = AtomCatalog::h264();
  // Need: Load 1 (static) + QuadSub 1 + Transform 1.
  const Molecule need{1, 1, 0, 1, 0, 1, 1};
  // Loaded containers: QuadSub 1 + Transform 1, nothing else.
  const Molecule loaded{0, 1, 0, 1, 0, 0, 0};
  EXPECT_TRUE(cat.satisfied_by(need, loaded));
  // Missing Transform → unsatisfied.
  const Molecule loaded2{0, 1, 0, 0, 0, 0, 0};
  EXPECT_FALSE(cat.satisfied_by(need, loaded2));
}

TEST(AtomCatalog, RejectsDuplicates) {
  EXPECT_THROW(AtomCatalog({{.name = "A", .hardware = {}, .rotatable = true},
                            {.name = "A", .hardware = {}, .rotatable = true}}),
               PreconditionError);
  EXPECT_THROW(AtomCatalog(std::vector<AtomInfo>{}), PreconditionError);
}

}  // namespace
