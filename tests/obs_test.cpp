/// Observability layer: event sinks, metrics registry, exporters (golden
/// Chrome-trace file, CSV round-trip), trace summarization, and end-to-end
/// instrumentation of the simulator + run-time manager.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rispp/obs/chrome_trace.hpp"
#include "rispp/obs/csv_trace.hpp"
#include "rispp/obs/metrics.hpp"
#include "rispp/obs/summary.hpp"
#include "rispp/sim/observe.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::obs;
using rispp::util::PreconditionError;

Event si_exec(std::uint64_t at, std::int32_t task, std::int64_t si,
              std::uint64_t cycles, bool hw) {
  return {.at = at, .kind = EventKind::SiExecuted, .task = task, .si = si,
          .cycles = cycles, .hardware = hw};
}

TraceMeta tiny_meta() {
  TraceMeta meta;
  meta.clock_mhz = 100.0;
  meta.containers = 2;
  meta.task_names = {"A"};
  meta.si_names = {"SATD"};
  meta.atom_names = {"Transform"};
  return meta;
}

std::vector<Event> tiny_stream() {
  return {
      {.at = 0, .kind = EventKind::TaskSwitch, .task = 0},
      {.at = 0, .kind = EventKind::ForecastSeen, .task = 0, .si = 0},
      {.at = 10, .kind = EventKind::AtomEvicted, .task = 0, .container = 1,
       .atom = 0},
      {.at = 10, .kind = EventKind::RotationStarted, .task = 0, .container = 1,
       .si = 0, .atom = 0, .cycles = 500},
      {.at = 510, .kind = EventKind::RotationFinished, .task = 0,
       .container = 1, .si = 0, .atom = 0, .cycles = 500},
      si_exec(100, 0, 0, 544, false),
      si_exec(700, 0, 0, 24, true),
      {.at = 700, .kind = EventKind::MoleculeUpgraded, .task = 0, .si = 0,
       .cycles = 24, .prev_cycles = 544, .hardware = true},
  };
}

TEST(EventKindNames, RoundTrip) {
  for (const auto k :
       {EventKind::SiExecuted, EventKind::ForecastSeen,
        EventKind::ForecastReleased, EventKind::RotationStarted,
        EventKind::RotationFinished, EventKind::RotationCancelled,
        EventKind::MoleculeUpgraded, EventKind::TaskSwitch,
        EventKind::AtomEvicted}) {
    EventKind back{};
    ASSERT_TRUE(kind_from_string(to_string(k), back)) << to_string(k);
    EXPECT_EQ(back, k);
  }
  EventKind back{};
  EXPECT_FALSE(kind_from_string("frobnicated", back));
}

TEST(TraceMetaNames, FallBackToIndexed) {
  const auto meta = tiny_meta();
  EXPECT_EQ(meta.si_name(0), "SATD");
  EXPECT_EQ(meta.si_name(7), "si#7");
  EXPECT_EQ(meta.task_name(3), "task#3");
  EXPECT_EQ(meta.atom_name(-1), "atom#-1");
}

TEST(MetricsRegistry, CountersAccumulatorsHistograms) {
  MetricsRegistry reg;
  reg.bump("rotations");
  reg.bump("rotations", 4);
  EXPECT_EQ(reg.counter("rotations"), 5u);
  EXPECT_EQ(reg.counter("missing"), 0u);

  reg.accumulator("latency").add(10.0);
  reg.accumulator("latency").add(20.0);
  EXPECT_DOUBLE_EQ(reg.accumulator("latency").mean(), 15.0);

  auto& h = reg.histogram("lat_hist", 0.0, 100.0, 10);
  h.add(42.0);
  EXPECT_EQ(reg.histogram("lat_hist", 0.0, 100.0, 10).total(), 1u);
  EXPECT_THROW(reg.histogram("lat_hist", 0.0, 50.0, 10), PreconditionError);

  const auto text = reg.summary();
  EXPECT_NE(text.find("rotations 5"), std::string::npos);
  EXPECT_NE(text.find("latency n=2"), std::string::npos);
}

TEST(MetricsSink, FoldsEventStream) {
  MetricsRegistry reg;
  MetricsSink sink(reg, tiny_meta());
  for (const auto& e : tiny_stream()) sink.on_event(e);
  EXPECT_EQ(reg.counter("events.si-executed"), 2u);
  EXPECT_EQ(reg.counter("exec.hw"), 1u);
  EXPECT_EQ(reg.counter("exec.sw"), 1u);
  EXPECT_EQ(reg.accumulator("si.SATD.cycles").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.accumulator("rotation.cycles").mean(), 500.0);
  // Forecast at cycle 0, upgrade at 700 → gap 700.
  EXPECT_DOUBLE_EQ(reg.accumulator("si.SATD.upgrade_gap").mean(), 700.0);
}

TEST(CsvTrace, RoundTripsEventsAndNames) {
  const auto events = tiny_stream();
  std::ostringstream os;
  write_csv_trace(os, events, tiny_meta());

  std::istringstream is(os.str());
  TraceMeta learned;
  const auto back = read_csv_trace(is, &learned);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(back[i], events[i]) << "event " << i;
  ASSERT_EQ(learned.task_names.size(), 1u);
  EXPECT_EQ(learned.task_names[0], "A");
  EXPECT_EQ(learned.si_names[0], "SATD");
  EXPECT_EQ(learned.atom_names[0], "Transform");
}

TEST(CsvTrace, RejectsMalformedInput) {
  const auto expect_rejected = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(read_csv_trace(is), PreconditionError) << text;
  };
  expect_rejected("not a header\n");
  const std::string header =
      "at,kind,task,container,si,atom,cycles,prev_cycles,hw,task_name,"
      "si_name,atom_name\n";
  expect_rejected(header + "1,task-switch,0,-1\n");            // short row
  expect_rejected(header + "1,warp-core,0,-1,-1,-1,0,0,0,,\n"); // bad kind
  expect_rejected(header + "x,task-switch,0,-1,-1,-1,0,0,0,,,\n");  // bad num
  expect_rejected(header + "-1,task-switch,0,-1,-1,-1,0,0,0,,,\n"); // neg at
}

TEST(ChromeTrace, GoldenFile) {
  // Pin the exact exporter output for a 3-event stream: track metadata,
  // microsecond conversion (100 MHz → cycles/100), span + instant shapes,
  // and the appended counter tracks (port busy/queue, cycle buckets).
  const std::vector<Event> events = {
      {.at = 0, .kind = EventKind::TaskSwitch, .task = 0},
      si_exec(100, 0, 0, 544, false),
      {.at = 10, .kind = EventKind::RotationStarted, .task = 0, .container = 1,
       .si = 0, .atom = 0, .cycles = 500},
  };
  std::ostringstream os;
  write_chrome_trace(os, events, tiny_meta());
  const std::string expected = R"({"displayTimeUnit":"ms","traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rispp"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"scheduler"}},
{"name":"thread_sort_index","ph":"M","pid":1,"tid":0,"args":{"sort_index":0}},
{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"task A"}},
{"name":"thread_sort_index","ph":"M","pid":1,"tid":1,"args":{"sort_index":1}},
{"name":"thread_name","ph":"M","pid":1,"tid":50,"args":{"name":"SelectMap port"}},
{"name":"thread_sort_index","ph":"M","pid":1,"tid":50,"args":{"sort_index":50}},
{"name":"thread_name","ph":"M","pid":1,"tid":100,"args":{"name":"AC 0"}},
{"name":"thread_sort_index","ph":"M","pid":1,"tid":100,"args":{"sort_index":100}},
{"name":"thread_name","ph":"M","pid":1,"tid":101,"args":{"name":"AC 1"}},
{"name":"thread_sort_index","ph":"M","pid":1,"tid":101,"args":{"sort_index":101}},
{"name":"switch → A","cat":"sched","ph":"i","s":"t","ts":0,"pid":1,"tid":0,"args":{"task":"A"}},
{"name":"SATD","cat":"si","ph":"X","ts":1,"dur":5.44,"pid":1,"tid":1,"args":{"cycles":544,"molecule":"sw"}},
{"name":"rotate Transform","cat":"rotation","ph":"X","ts":0.1,"dur":5,"pid":1,"tid":101,"args":{"atom":"Transform","container":1,"cycles":500}},
{"name":"rotate Transform → AC 1","cat":"rotation","ph":"X","ts":0.1,"dur":5,"pid":1,"tid":50,"args":{"atom":"Transform","container":1,"cycles":500}},
{"name":"port busy","cat":"counter","ph":"C","ts":0.1,"pid":1,"args":{"busy":1}},
{"name":"port busy","cat":"counter","ph":"C","ts":5.1,"pid":1,"args":{"busy":0}},
{"name":"port queue","cat":"counter","ph":"C","ts":0,"pid":1,"args":{"queued":1}},
{"name":"port queue","cat":"counter","ph":"C","ts":0.1,"pid":1,"args":{"queued":0}},
{"name":"cycle buckets","cat":"counter","ph":"C","ts":0,"pid":1,"args":{"sw_exec":0,"hw_exec":0,"plain_compute":0,"rotation_stall":0,"idle":0}}
]}
)";
  EXPECT_EQ(os.str(), expected);

  // The counter tracks are opt-out.
  std::ostringstream plain;
  write_chrome_trace(plain, events, tiny_meta(), {.counter_tracks = false});
  EXPECT_EQ(plain.str().find("\"cat\":\"counter\""), std::string::npos);
}

TEST(ChromeTrace, CancelledRotationSpansAreDropped) {
  const std::vector<Event> events = {
      {.at = 10, .kind = EventKind::RotationStarted, .container = 0, .si = 0,
       .atom = 0, .cycles = 500},
      {.at = 510, .kind = EventKind::RotationFinished, .container = 0, .si = 0,
       .atom = 0, .cycles = 500},
      {.at = 20, .kind = EventKind::RotationCancelled, .container = 0,
       .atom = 0, .cycles = 500, .prev_cycles = 10},
  };
  std::ostringstream os;
  write_chrome_trace(os, events, tiny_meta());
  const auto json = os.str();
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("cancel Transform"), std::string::npos);
}

TEST(Summarize, AggregatesTinyStream) {
  const auto s = summarize(tiny_stream());
  EXPECT_EQ(s.rotations, 1u);
  EXPECT_EQ(s.rotation_busy_cycles, 500u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.task_switches, 1u);
  EXPECT_EQ(s.forecasts, 1u);
  EXPECT_EQ(s.first_cycle, 0u);
  // Last timestamp is the SiExecuted span end 700 + 24.
  EXPECT_EQ(s.last_cycle, 724u);
  ASSERT_EQ(s.per_si.size(), 1u);
  const auto& satd = s.per_si.at(0);
  EXPECT_EQ(satd.invocations, 2u);
  EXPECT_EQ(satd.hw_invocations, 1u);
  EXPECT_EQ(satd.sw_invocations, 1u);
  EXPECT_EQ(satd.upgrades, 1u);
  EXPECT_EQ(satd.downgrades, 0u);
  ASSERT_EQ(satd.upgrade_gap.count(), 1u);
  EXPECT_DOUBLE_EQ(satd.upgrade_gap.mean(), 700.0);
  EXPECT_NEAR(s.rotation_utilization(), 500.0 / 724.0, 1e-12);
}

TEST(Summarize, ZeroSpanTracesDoNotDivideByZero) {
  // Regression: empty and single-instant traces have span_cycles() == 0;
  // rotation_utilization() must return 0.0, not NaN/inf.
  EXPECT_DOUBLE_EQ(summarize({}).rotation_utilization(), 0.0);

  const std::vector<Event> instant = {
      {.at = 42, .kind = EventKind::TaskSwitch, .task = 0}};
  const auto s = summarize(instant);
  EXPECT_EQ(s.span_cycles(), 0u);
  EXPECT_DOUBLE_EQ(s.rotation_utilization(), 0.0);
}

TEST(Summarize, CancelledRotationsDoNotOccupyThePort) {
  const std::vector<Event> events = {
      {.at = 0, .kind = EventKind::RotationStarted, .container = 0, .atom = 0,
       .cycles = 100},
      {.at = 50, .kind = EventKind::RotationStarted, .container = 1, .atom = 0,
       .cycles = 100, .prev_cycles = 0},
      {.at = 10, .kind = EventKind::RotationCancelled, .container = 1,
       .atom = 0, .cycles = 100, .prev_cycles = 50},
  };
  const auto s = summarize(events);
  EXPECT_EQ(s.rotations, 1u);
  EXPECT_EQ(s.rotations_cancelled, 1u);
  EXPECT_EQ(s.rotation_busy_cycles, 100u);
}

/// End-to-end: a Fig-6-flavoured two-task scenario with a sink attached.
class InstrumentedSim : public ::testing::Test {
 protected:
  InstrumentedSim() : lib_(rispp::isa::SiLibrary::h264()) {
    cfg_.rt.atom_containers = 6;
    cfg_.quantum = 25000;
  }

  rispp::sim::SimResult run(rispp::obs::EventSink* sink) {
    cfg_.rt.sink = sink;
    rispp::sim::Simulator sim(borrow(lib_), cfg_);
    const auto satd = lib_.index_of("SATD_4x4");
    const auto ht = lib_.index_of("HT_4x4");
    rispp::sim::Trace a;
    a.push_back(rispp::sim::TraceOp::forecast(satd, 5000));
    for (int i = 0; i < 30; ++i) {
      a.push_back(rispp::sim::TraceOp::compute(10000));
      a.push_back(rispp::sim::TraceOp::si(satd, 50));
    }
    rispp::sim::Trace b;
    b.push_back(rispp::sim::TraceOp::compute(400000));
    b.push_back(rispp::sim::TraceOp::forecast(ht, 100000));
    for (int i = 0; i < 10; ++i) {
      b.push_back(rispp::sim::TraceOp::compute(40000));
      b.push_back(rispp::sim::TraceOp::si(ht, 100));
    }
    b.push_back(rispp::sim::TraceOp::release(ht));
    sim.add_task({"A", std::move(a)});
    sim.add_task({"B", std::move(b)});
    return sim.run();
  }

  rispp::isa::SiLibrary lib_;
  rispp::sim::SimConfig cfg_;
};

TEST_F(InstrumentedSim, SinkDoesNotPerturbSimulation) {
  rispp::obs::TraceRecorder recorder;
  const auto traced = run(&recorder);
  const auto plain = run(nullptr);
  EXPECT_EQ(traced.total_cycles, plain.total_cycles);
  EXPECT_EQ(traced.rotations, plain.rotations);
  EXPECT_FALSE(recorder.events().empty());
}

TEST_F(InstrumentedSim, RotationSpansMatchReconfigPortLatency) {
  rispp::obs::TraceRecorder recorder;
  run(&recorder);
  std::size_t rotation_spans = 0;
  for (const auto& e : recorder.events()) {
    if (e.kind != EventKind::RotationStarted) continue;
    ++rotation_spans;
    ASSERT_GE(e.atom, 0);
    const auto bytes =
        lib_.catalog().at(static_cast<std::size_t>(e.atom)).hardware
            .bitstream_bytes;
    EXPECT_EQ(e.cycles,
              cfg_.rt.port.rotation_time_cycles(bytes, cfg_.rt.clock_mhz));
  }
  EXPECT_GT(rotation_spans, 0u);
}

TEST_F(InstrumentedSim, StreamAgreesWithManagerAggregates) {
  rispp::obs::TraceRecorder recorder;
  const auto r = run(&recorder);
  const auto s = summarize(recorder.events());
  EXPECT_EQ(s.rotations, r.rotations);
  std::uint64_t invocations = 0;
  for (const auto& [name, st] : r.per_si) invocations += st.invocations;
  std::uint64_t traced_invocations = 0;
  for (const auto& [si, st] : s.per_si) traced_invocations += st.invocations;
  EXPECT_EQ(traced_invocations, invocations);
  // Both tasks forecast once; HT_4x4 released once.
  EXPECT_EQ(s.forecasts, 2u);
  EXPECT_EQ(s.releases, 1u);
  // The SATD upgrade staircase must have fired at least once (SW → HW).
  const auto& satd = s.per_si.at(
      static_cast<std::int64_t>(lib_.index_of("SATD_4x4")));
  EXPECT_GT(satd.upgrades, 0u);
  EXPECT_GT(satd.sw_invocations, 0u);
  EXPECT_GT(satd.hw_invocations, 0u);
}

TEST_F(InstrumentedSim, MetaNamesResolveAndExportersRun) {
  rispp::obs::TraceRecorder recorder;
  run(&recorder);
  const auto meta = make_trace_meta(lib_, cfg_, {"A", "B"});
  EXPECT_EQ(meta.si_names.size(), lib_.size());
  EXPECT_EQ(meta.containers, 6u);

  std::ostringstream json, csv;
  write_chrome_trace(json, recorder.events(), meta);
  write_csv_trace(csv, recorder.events(), meta);
  EXPECT_NE(json.str().find("\"SATD_4x4\""), std::string::npos);

  std::istringstream is(csv.str());
  TraceMeta learned;
  const auto back = read_csv_trace(is, &learned);
  EXPECT_EQ(back.size(), recorder.events().size());
}


// --- EventBatch / sink delivery contracts --------------------------------

/// Records which sink instance saw each event, in arrival order — the probe
/// for batch fan-out and unroll ordering.
struct TaggedSink final : EventSink {
  TaggedSink(int id, std::vector<std::pair<int, std::uint64_t>>& log)
      : id_(id), log_(&log) {}
  void on_event(const Event& e) override { log_->emplace_back(id_, e.at); }

  int id_;
  std::vector<std::pair<int, std::uint64_t>>* log_;
};

Event at(std::uint64_t t) {
  Event e;
  e.at = t;
  e.kind = EventKind::TaskSwitch;
  return e;
}

TEST(EventBatch, DestructorFlushesBufferedEventsDuringUnwind) {
  // The batch lives on an instrumented hot path; if the evaluator throws
  // mid-run, the buffered prefix must still reach the sink (the flight
  // recorder and torn-tail diagnostics depend on a complete stream).
  TraceRecorder recorder;
  EXPECT_THROW(
      {
        EventBatch batch(&recorder);
        batch.emit(at(1));
        batch.emit(at(2));
        throw std::runtime_error("evaluator died");
      },
      std::runtime_error);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_EQ(recorder.events()[0].at, 1u);
  EXPECT_EQ(recorder.events()[1].at, 2u);
}

TEST(EventBatch, CapacityFlushPreservesEmissionOrder) {
  TraceRecorder recorder;
  EventBatch batch(&recorder);
  const std::size_t n = EventBatch::kCapacity + 5;
  for (std::size_t i = 0; i < n; ++i) batch.emit(at(i));
  // Capacity flush happened mid-stream; the tail is still buffered.
  EXPECT_EQ(recorder.events().size(), EventBatch::kCapacity);
  batch.flush();
  ASSERT_EQ(recorder.events().size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(recorder.events()[i].at, i);
}

TEST(TeeSink, BatchGoesToAFullyBeforeBAndInOrder) {
  std::vector<std::pair<int, std::uint64_t>> log;
  TaggedSink a(1, log), b(2, log);
  TeeSink tee(&a, &b);
  const std::vector<Event> events{at(10), at(20), at(30)};
  tee.on_batch(events);
  // Default on_batch unrolls to on_event, so the shared log shows a's whole
  // run first, then b's — each in emission order.
  const std::vector<std::pair<int, std::uint64_t>> want{
      {1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}};
  EXPECT_EQ(log, want);
}

TEST(TeeSink, NullSidesAreSkipped) {
  std::vector<std::pair<int, std::uint64_t>> log;
  TaggedSink b(2, log);
  TeeSink tee(nullptr, &b);
  tee.on_event(at(1));
  tee.on_batch(std::vector<Event>{at(2)});
  const std::vector<std::pair<int, std::uint64_t>> want{{2, 1}, {2, 2}};
  EXPECT_EQ(log, want);
}

}  // namespace
