/// The TraceSource seam: every producer behind one interface, the deprecated
/// walk_graph shim, and the experiment engine running the phased generator
/// as a sweep axis with byte-identical results at any worker count.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "rispp/aes/graph.hpp"
#include "rispp/exp/platform.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/exp/sweep.hpp"
#include "rispp/forecast/forecast_pass.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/sim/trace_io.hpp"
#include "rispp/util/error.hpp"
#include "rispp/workload/trace_source.hpp"

namespace {

using rispp::isa::SiLibrary;
using rispp::sim::TaskDef;
using rispp::sim::TraceOp;
using rispp::util::PreconditionError;
using rispp::workload::PhasedStats;
using rispp::workload::PhasedWorkload;
using rispp::workload::TraceSource;
using rispp::workload::WalkParams;
using rispp::workload::WalkStats;

std::string serialize(const std::vector<TaskDef>& tasks,
                      const SiLibrary& lib) {
  std::ostringstream out;
  rispp::sim::write_tasks(out, tasks, lib);
  return out.str();
}

TEST(TraceSource, FixedReturnsTheListVerbatim) {
  std::vector<TaskDef> tasks;
  tasks.push_back({"a", {TraceOp::compute(100), TraceOp::si(0, 4)}});
  tasks.push_back({"b", {TraceOp::compute(50)}});
  const auto source = TraceSource::make_fixed(tasks, "scenario");
  const auto got = source->tasks();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].name, "a");
  EXPECT_EQ(got[1].name, "b");
  ASSERT_EQ(got[0].trace.size(), 2u);
  EXPECT_EQ(got[0].trace[1].count, 4u);
  EXPECT_EQ(source->describe(), "scenario (2 fixed tasks)");
  // tasks() is pure: repeated calls keep handing out the same list.
  EXPECT_EQ(got.size(), source->tasks().size());
}

TEST(TraceSource, TextAndFileProducersAgree) {
  const auto lib = SiLibrary::h264();
  const std::string text =
      "task enc\n"
      "  forecast SATD_4x4 16 0.9\n"
      "  compute 1000\n"
      "  si SATD_4x4 16\n"
      "  release SATD_4x4\n"
      "task audio\n"
      "  compute 5000\n";
  const auto from_text = TraceSource::make_from_text(text, borrow(lib));

  const auto path =
      std::filesystem::path(::testing::TempDir()) / "source_test.trace";
  {
    std::ofstream out(path);
    out << text;
  }
  const auto from_file =
      TraceSource::make_from_file(path.string(), borrow(lib));
  EXPECT_EQ(serialize(from_text->tasks(), lib),
            serialize(from_file->tasks(), lib));
  EXPECT_EQ(from_text->tasks().size(), 2u);
}

TEST(TraceSource, MissingTraceFileThrows) {
  const auto lib = SiLibrary::h264();
  EXPECT_THROW(
      (void)TraceSource::make_from_file("/no/such/file.trace", borrow(lib)),
      PreconditionError);
}

TEST(TraceSource, DeprecatedWalkGraphShimMatchesTheSeam) {
  // The shim must forward *unchanged*: same trace bytes AND same WalkStats,
  // over several walk seeds and with forecasts ablated. Anything less and
  // "deprecated but source-compatible" would be a lie.
  const auto lib = rispp::aes::si_library();
  const auto graph = rispp::aes::build_graph(300);
  rispp::forecast::ForecastConfig fc;
  fc.atom_containers = 6;
  fc.alpha = 0.05;  // keep the plan non-empty so forecasts actually fire
  const auto plan = rispp::forecast::run_forecast_pass(graph, lib, fc);
  ASSERT_GT(plan.total_points(), 0u);

  for (const std::uint64_t seed : {9ull, 23ull, 77ull}) {
    for (const bool emit_forecasts : {true, false}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " emit_forecasts=" + (emit_forecasts ? "true" : "false"));
      WalkParams p;
      p.seed = seed;
      p.emit_forecasts = emit_forecasts;

      WalkStats seam_stats;
      const auto seam =
          TraceSource::make_graph_walk(graph, plan, borrow(lib), p,
                                       &seam_stats)
              ->tasks();
      ASSERT_EQ(seam.size(), 1u);

      WalkStats legacy_stats;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
      const auto legacy =
          rispp::workload::walk_graph(graph, plan, lib, p, &legacy_stats);
#pragma GCC diagnostic pop

      EXPECT_EQ(serialize({{"walk", legacy}}, lib), serialize(seam, lib));
      EXPECT_EQ(legacy_stats.steps, seam_stats.steps);
      EXPECT_EQ(legacy_stats.si_invocations, seam_stats.si_invocations);
      EXPECT_EQ(legacy_stats.forecasts, seam_stats.forecasts);
      EXPECT_EQ(legacy_stats.reached_sink, seam_stats.reached_sink);
      EXPECT_EQ(legacy_stats.truncated, seam_stats.truncated);
      if (!emit_forecasts) {
        EXPECT_EQ(seam_stats.forecasts, 0u);
        for (const auto& op : seam[0].trace)
          EXPECT_NE(op.kind, rispp::sim::TraceOp::Kind::Forecast);
      } else {
        EXPECT_GT(seam_stats.forecasts, 0u);
      }
    }
  }
}

TEST(TraceSource, PhasedSourceMatchesGenerateAndRefreshesStats) {
  const auto lib = SiLibrary::h264();
  const std::string config =
      "workload s\n  tasks 3\n  seed 5\n"
      "phase p\n  events 25\n  mix SATD_4x4 DCT_4x4\n  si_chooser uniform\n";
  auto workload = PhasedWorkload::from_string(config, borrow(lib));
  const auto direct = serialize(workload.generate(), lib);

  PhasedStats stats;
  const auto source =
      TraceSource::make_phased(std::move(workload), &stats);
  EXPECT_EQ(serialize(source->tasks(), lib), direct);
  EXPECT_EQ(stats.events, 25u);
  // Stats are refreshed, not accumulated, across tasks() calls.
  (void)source->tasks();
  EXPECT_EQ(stats.events, 25u);
  EXPECT_NE(source->describe().find("phased workload s"), std::string::npos);
}

TEST(TraceSource, AddToFeedsTheSimulatorLikeManualAddTask) {
  const auto lib = SiLibrary::h264();
  const std::string config =
      "workload s\n  tasks 4\n  seed 2\n"
      "phase p\n  events 40\n  mix SATD_4x4=2 HT_4x4\n";
  const auto run = [&](bool through_seam) {
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = 4;
    cfg.rt.record_events = false;
    rispp::sim::Simulator sim(borrow(lib), cfg);
    const auto source = TraceSource::make_phased(
        PhasedWorkload::from_string(config, borrow(lib)));
    if (through_seam) {
      source->add_to(sim);
    } else {
      for (auto task : source->tasks()) sim.add_task(std::move(task));
    }
    return sim.run();
  };
  const auto a = run(true);
  const auto b = run(false);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.rotations, b.rotations);
}

TEST(StandardEvalPhased, SweepIsByteIdenticalAtAnyWorkerCount) {
  const auto platform = rispp::exp::Platform::builtin("h264");
  rispp::exp::Sweep sweep;
  sweep.axis("workload", {"phased"})
      .axis("wl_tasks", {"4", "8"})
      .axis("wl_events", {"60"})
      .axis("wl_skew", {"0", "0.9"})
      .axis("containers", {"3"});
  const auto serial = rispp::exp::run_sim_sweep(platform, sweep, 1);
  const auto parallel = rispp::exp::run_sim_sweep(platform, sweep, 4);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_EQ(serial.rows().size(), 4u);

  // Task skew is a real axis: the skewed points do not reproduce the
  // uniform points' cycle counts.
  EXPECT_NE(serial.rows().at(0).at("cycles"), serial.rows().at(1).at("cycles"));
}

TEST(StandardEvalPhased, SeedAxisRidesOnWlSeed) {
  const auto platform = rispp::exp::Platform::builtin("h264");
  rispp::exp::Sweep sweep;
  sweep.axis("workload", {"phased"})
      .axis("wl_tasks", {"4"})
      .axis("wl_events", {"50"})
      .axis("wl_seed", {"1", "2"});
  const auto table = rispp::exp::run_sim_sweep(platform, sweep, 2);
  ASSERT_EQ(table.rows().size(), 2u);
  EXPECT_NE(table.rows().at(0).at("cycles"), table.rows().at(1).at("cycles"));
}

TEST(StandardEvalPhased, ValidationRejectsBadParameters) {
  const auto check_throws = [](const char* axis, const char* value) {
    rispp::exp::Sweep sweep;
    sweep.axis("workload", {"phased"}).axis(axis, {value});
    EXPECT_THROW(rispp::exp::validate_sim_sweep(sweep), PreconditionError)
        << axis << "=" << value;
  };
  check_throws("wl_skew", "1.5");
  check_throws("wl_skew", "-0.1");
  check_throws("wl_tasks", "0");
  check_throws("wl_events", "0");
  check_throws("wl_rate", "0");

  rispp::exp::Sweep good;
  good.axis("workload", {"phased"}).axis("wl_skew", {"0.5"});
  EXPECT_NO_THROW(rispp::exp::validate_sim_sweep(good));
}

TEST(StandardEvalGenerated, LibAxesValidateUpFront) {
  // lib_* axes swap in a generated library, which only makes sense for the
  // synthetic workloads; pairing them with a builtin trace must fail in
  // validation (--dry-run), not midway through a sweep.
  rispp::exp::Sweep bad_workload;
  bad_workload.axis("workload", {"encdec"}).axis("lib_seed", {"3"});
  EXPECT_THROW(rispp::exp::validate_sim_sweep(bad_workload),
               PreconditionError);

  const auto check_throws = [](const char* axis, const char* value) {
    rispp::exp::Sweep sweep;
    sweep.axis("workload", {"generated"}).axis(axis, {value});
    EXPECT_THROW(rispp::exp::validate_sim_sweep(sweep), PreconditionError)
        << axis << "=" << value;
  };
  check_throws("lib_atoms", "0");
  check_throws("lib_sis", "0");
  check_throws("lib_shape", "spiral");
  check_throws("lib_bitstream", "nonsense(1,2)");

  rispp::exp::Sweep good;
  good.axis("workload", {"generated"})
      .axis("lib_seed", {"3"})
      .axis("lib_shape", {"chains"});
  EXPECT_NO_THROW(rispp::exp::validate_sim_sweep(good));
}

TEST(StandardEvalPhased, WconfigAxisLoadsAConfigFile) {
  const auto platform = rispp::exp::Platform::builtin("h264");
  rispp::exp::Sweep sweep;
  sweep.axis("workload", {"phased"})
      .axis("wconfig", {RISPP_TEST_DATA_DIR "/phased_small.workload"})
      .axis("wl_seed", {"7"})
      .axis("containers", {"4"});
  const auto table = rispp::exp::run_sim_sweep(platform, sweep, 1);
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_GT(std::stoull(table.rows().at(0).at("cycles")), 0u);

  rispp::exp::Sweep missing;
  missing.axis("workload", {"phased"})
      .axis("wconfig", {"/no/such/config.workload"});
  EXPECT_THROW((void)rispp::exp::run_sim_sweep(platform, missing, 1),
               rispp::util::Error);
}

}  // namespace
