#include <gtest/gtest.h>

#include "rispp/aes/graph.hpp"
#include "rispp/forecast/candidates.hpp"

namespace {

using namespace rispp::forecast;
using rispp::cfg::BBGraph;

FdfParams lenient_params() {
  // A small T_Rot so mid-distance blocks qualify easily.
  FdfParams p;
  p.t_rot_cycles = 1000;
  p.t_sw_cycles = 500;
  p.t_hw_cycles = 20;
  p.rotation_energy = 100;
  p.energy_sw_per_exec = 100;
  p.energy_hw_per_exec = 10;
  p.alpha = 0.1;  // offset ≈ 0.11 executions
  return p;
}

TEST(Candidates, EmptyWhenSiUnused) {
  BBGraph g;
  g.add_block("only", 10, 5);
  EXPECT_TRUE(determine_candidates(g, 0, Fdf(lenient_params())).empty());
}

TEST(Candidates, UsageSiteItselfIsNeverItsOwnCandidate) {
  BBGraph g;
  const auto pre = g.add_block("pre", 2000, 10);
  const auto use = g.add_block("use", 10, 10);
  g.add_edge(pre, use, 10);
  g.add_si_usage(use, 0, 50);
  const auto cands = determine_candidates(g, 0, Fdf(lenient_params()));
  for (const auto& c : cands) EXPECT_NE(c.block, use);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands.front().block, pre);
  EXPECT_NEAR(cands.front().probability, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cands.front().expected_executions, 50.0);
}

TEST(Candidates, TooFewExpectedExecutionsRejected) {
  // Block too close to the usage (distance ≪ T_Rot) with only one expected
  // execution → the FDF's near branch demands far more.
  BBGraph g;
  const auto pre = g.add_block("pre", 10, 10);  // 10 cycles before the SI
  const auto use = g.add_block("use", 10, 10);
  g.add_edge(pre, use, 10);
  g.add_si_usage(use, 0, 1);  // 1 execution per reach
  auto p = lenient_params();
  p.t_rot_cycles = 100000;  // enormous rotation time
  const auto cands = determine_candidates(g, 0, Fdf(p));
  EXPECT_TRUE(cands.empty());
}

TEST(Candidates, UnreachableBlocksExcluded) {
  BBGraph g;
  const auto entry = g.add_block("entry", 2000, 10);
  const auto use = g.add_block("use", 10, 10);
  const auto dead = g.add_block("dead", 2000, 10);  // cannot reach use
  g.add_edge(entry, use, 10);
  g.add_edge(use, dead, 10);
  g.add_si_usage(use, 0, 50);
  const auto cands = determine_candidates(g, 0, Fdf(lenient_params()));
  for (const auto& c : cands) EXPECT_NE(c.block, dead);
}

TEST(Candidates, AnnotationsArePopulated) {
  BBGraph g;
  const auto pre = g.add_block("pre", 1500, 20);
  const auto use = g.add_block("use", 10, 20);
  g.add_edge(pre, use, 20);
  g.add_si_usage(use, 0, 40);
  const auto cands = determine_candidates(g, 0, Fdf(lenient_params()));
  ASSERT_EQ(cands.size(), 1u);
  const auto& c = cands.front();
  EXPECT_EQ(c.si_index, 0u);
  EXPECT_GT(c.distance_cycles, 0.0);
  EXPECT_GE(c.max_distance_cycles, c.min_distance_cycles);
  EXPECT_GT(c.required_executions, 0.0);
  EXPECT_GE(c.expected_executions, c.required_executions);
}

TEST(Candidates, AesGraphProducesCandidatesForEverySi) {
  // The Fig-3 artifact: AES with 1000 blocks must yield FC candidates for
  // SUBBYTES, MIXCOLUMNS and KEYEXPAND somewhere in the graph.
  const auto lib = rispp::aes::si_library();
  rispp::aes::AesGraphIds ids{};
  const auto g = rispp::aes::build_graph(1000, &ids);

  for (std::size_t si = 0; si < lib.size(); ++si) {
    FdfParams p = lenient_params();
    const auto cands = determine_candidates(g, si, Fdf(p));
    EXPECT_FALSE(cands.empty()) << lib.at(si).name();
  }
}

TEST(Candidates, AesEarlyBlocksQualifyForSubbytes) {
  const auto lib = rispp::aes::si_library();
  rispp::aes::AesGraphIds ids{};
  const auto g = rispp::aes::build_graph(1000, &ids);
  const auto cands =
      determine_candidates(g, lib.index_of("SUBBYTES"), Fdf(lenient_params()));
  // The per-reach expectation is total invocations / block executions, so
  // blocks *outside* the hot loops are the natural candidates: the block
  // loop head executes 1000× for 10,000 SUBBYTES invocations (10 per
  // reach), while the round-loop head executes 9000× (1.1 per reach) and
  // fails the FDF bar. Exactly the paper's point — forecast from far ahead.
  bool found_block_loop_head = false;
  for (const auto& c : cands) {
    EXPECT_NE(c.block, ids.round_loop_head);
    if (c.block == ids.block_loop_head) {
      found_block_loop_head = true;
      EXPECT_NEAR(c.probability, 1.0, 1e-9);
      EXPECT_NEAR(c.expected_executions, 10.0, 1e-9);
    }
  }
  EXPECT_TRUE(found_block_loop_head);
}

}  // namespace
