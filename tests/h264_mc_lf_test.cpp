/// Functional correctness of the MC (6-tap interpolation) and LF
/// (deblocking) kernels: Atom-composed versions vs naive references,
/// plus the standard's structural properties.

#include <gtest/gtest.h>

#include "rispp/h264/mc_lf_kernels.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::h264;

Patch9 random_patch(rispp::util::Xoshiro256& rng) {
  Patch9 p{};
  for (auto& v : p) v = static_cast<std::int32_t>(rng.range(0, 255));
  return p;
}

Patch9 constant_patch(std::int32_t value) {
  Patch9 p{};
  p.fill(value);
  return p;
}

EdgeLine random_edge(rispp::util::Xoshiro256& rng, int spread) {
  EdgeLine e{};
  const auto base = rng.range(20, 235);
  for (auto& v : e)
    v = static_cast<std::int32_t>(
        std::clamp<std::int64_t>(base + rng.range(-spread, spread), 0, 255));
  return e;
}

TEST(Atoms, SixTapWeights) {
  const std::int32_t x[6] = {1, 1, 1, 1, 1, 1};
  EXPECT_EQ(atom_sixtap(x), 32);  // 1-5+20+20-5+1
  const std::int32_t impulse[6] = {0, 0, 1, 0, 0, 0};
  EXPECT_EQ(atom_sixtap(impulse), 20);
}

TEST(Atoms, ClipRoundsAndClamps) {
  EXPECT_EQ(atom_clip(32 * 100, 5), 100);
  EXPECT_EQ(atom_clip(32 * 100 + 16, 5), 101);  // rounds up at half
  EXPECT_EQ(atom_clip(-50, 5), 0);
  EXPECT_EQ(atom_clip(32 * 400, 5), 255);
  EXPECT_EQ(atom_clip(300, 0), 255);  // clamp-only mode
  EXPECT_EQ(atom_clip_delta(9, 4), 4);
  EXPECT_EQ(atom_clip_delta(-9, 4), -4);
  EXPECT_EQ(atom_clip_delta(2, 4), 2);
}

class McVsReference : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  rispp::util::Xoshiro256 rng_{GetParam()};
};

TEST_P(McVsReference, HpelHorizontalMatches) {
  const auto p = random_patch(rng_);
  EXPECT_EQ(mc_hpel_4x4(p, HpelPhase::H), ref::mc_hpel_4x4(p, HpelPhase::H));
}

TEST_P(McVsReference, HpelVerticalMatches) {
  const auto p = random_patch(rng_);
  EXPECT_EQ(mc_hpel_4x4(p, HpelPhase::V), ref::mc_hpel_4x4(p, HpelPhase::V));
}

TEST_P(McVsReference, HpelCenterMatches) {
  const auto p = random_patch(rng_);
  EXPECT_EQ(mc_hpel_4x4(p, HpelPhase::C), ref::mc_hpel_4x4(p, HpelPhase::C));
}

TEST_P(McVsReference, QpelMatches) {
  const auto p = random_patch(rng_);
  EXPECT_EQ(mc_qpel_4x4(p), ref::mc_qpel_4x4(p));
}

TEST_P(McVsReference, LfEdgeMatches) {
  for (int spread : {2, 8, 30, 120}) {
    const auto line = random_edge(rng_, spread);
    EXPECT_EQ(lf_edge(line, 40, 10, 4), ref::lf_edge(line, 40, 10, 4));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPatches, McVsReference,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Mc, FlatPatchInterpolatesToItself) {
  // The FIR has unity DC gain (32/32): constant areas stay constant.
  const auto p = constant_patch(123);
  for (auto phase : {HpelPhase::H, HpelPhase::V, HpelPhase::C}) {
    const auto b = mc_hpel_4x4(p, phase);
    for (auto v : b) EXPECT_EQ(v, 123);
  }
  const auto q = mc_qpel_4x4(p);
  for (auto v : q) EXPECT_EQ(v, 123);
}

TEST(Mc, OutputAlwaysInPixelRange) {
  rispp::util::Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto p = random_patch(rng);
    for (auto phase : {HpelPhase::H, HpelPhase::V, HpelPhase::C})
      for (auto v : mc_hpel_4x4(p, phase)) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 255);
      }
  }
}

TEST(Lf, FlatEdgeUnchanged) {
  // No discontinuity → the filter must not invent one.
  EdgeLine flat{};
  flat.fill(100);
  EXPECT_EQ(lf_edge(flat, 40, 10, 4), flat);
}

TEST(Lf, StrongEdgePreserved) {
  // |p0−q0| ≥ α means a real image edge — must pass through unfiltered.
  EdgeLine edge{50, 50, 50, 50, 200, 200, 200, 200};
  EXPECT_FALSE(lf_edge_active(edge, 40, 10));
  EXPECT_EQ(lf_edge(edge, 40, 10, 4), edge);
}

TEST(Lf, BlockingArtifactSmoothed) {
  // A small step (blocking artifact) gets reduced, not removed entirely.
  EdgeLine step{100, 100, 100, 100, 110, 110, 110, 110};
  ASSERT_TRUE(lf_edge_active(step, 40, 12));
  const auto out = lf_edge(step, 40, 12, 4);
  EXPECT_GT(out[3], 100);       // p0 moved towards q0
  EXPECT_LT(out[4], 110);       // q0 moved towards p0
  EXPECT_LE(out[4] - out[3], 10);  // discontinuity shrank
  // Outermost pixels never change.
  EXPECT_EQ(out[0], step[0]);
  EXPECT_EQ(out[7], step[7]);
}

TEST(Lf, DeltaClippedByC) {
  // Huge flat-sided step within α: delta is clipped to ±c.
  EdgeLine step{100, 100, 100, 100, 130, 130, 130, 130};
  const auto out = lf_edge(step, 40, 35, 2);
  // ap/aq hold (flat sides), so c = c0 + 2 = 4.
  EXPECT_LE(out[3] - 100, 4);
  EXPECT_LE(130 - out[4], 4);
}

TEST(Lf, FilteredValuesStayInRange) {
  rispp::util::Xoshiro256 rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto line = random_edge(rng, 25);
    const auto out = lf_edge(line, 52, 16, 6);
    for (auto v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
    }
  }
}

}  // namespace
