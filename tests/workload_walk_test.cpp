/// Graph-driven workload generation: Markov-walk fidelity to the profile,
/// determinism, forecast emission, truncation reporting, and the end-to-end
/// speed-up on AES — all through the TraceSource seam.

#include <gtest/gtest.h>

#include "rispp/aes/graph.hpp"
#include "rispp/cfg/dot.hpp"
#include "rispp/forecast/forecast_pass.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/workload/trace_source.hpp"

namespace {

using rispp::workload::TraceSource;
using rispp::workload::WalkParams;
using rispp::workload::WalkStats;

struct AesSetup {
  rispp::isa::SiLibrary lib = rispp::aes::si_library();
  rispp::aes::AesGraphIds ids{};
  rispp::cfg::BBGraph graph;
  rispp::forecast::FcPlan plan;

  explicit AesSetup(std::uint64_t blocks = 500) {
    graph = rispp::aes::build_graph(blocks, &ids);
    rispp::forecast::ForecastConfig cfg;
    cfg.atom_containers = 6;
    cfg.alpha = 0.05;
    plan = rispp::forecast::run_forecast_pass(graph, lib, cfg);
  }

  rispp::sim::Trace walk(const WalkParams& p, WalkStats* stats = nullptr) {
    auto tasks =
        TraceSource::make_graph_walk(graph, plan, borrow(lib), p, stats)
            ->tasks();
    EXPECT_EQ(tasks.size(), 1u);
    return std::move(tasks[0].trace);
  }
};

TEST(GraphWalk, DeterministicPerSeed) {
  AesSetup s(100);
  WalkParams p;
  p.seed = 3;
  const auto a = s.walk(p);
  const auto b = s.walk(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].cycles, b[i].cycles);
    EXPECT_EQ(a[i].si_index, b[i].si_index);
  }
  p.seed = 4;
  const auto c = s.walk(p);
  // Different seed → (almost surely) different walk length on this graph.
  EXPECT_NE(a.size(), c.size());
}

TEST(GraphWalk, ReachesTheSinkAndCountsMatchStructure) {
  // The AES graph is a chain of loops with fixed trip proportions: 9 rounds
  // per block, one final round per block. The walk's SI mix must reflect
  // that regardless of the random seed.
  AesSetup s(400);
  WalkParams p;
  p.seed = 11;
  p.max_steps = 200000;
  WalkStats stats;
  const auto trace = s.walk(p, &stats);
  EXPECT_TRUE(stats.reached_sink);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.si_invocations, 0u);

  std::uint64_t subbytes = 0, mixcols = 0;
  for (const auto& op : trace) {
    if (op.kind != rispp::sim::TraceOp::Kind::Si) continue;
    if (op.si_index == s.lib.index_of("SUBBYTES")) subbytes += op.count;
    if (op.si_index == s.lib.index_of("MIXCOLUMNS")) mixcols += op.count;
  }
  // SUBBYTES fires in the 9 round bodies and the final round per block:
  // expect the 10:9 ratio within Markov-walk noise.
  ASSERT_GT(mixcols, 0u);
  const double ratio = static_cast<double>(subbytes) / mixcols;
  EXPECT_NEAR(ratio, 10.0 / 9.0, 0.15);
}

TEST(GraphWalk, ForecastsFireAtPlanBlocks) {
  AesSetup s(300);
  ASSERT_GT(s.plan.total_points(), 0u);
  WalkParams p;
  WalkStats stats;
  const auto trace = s.walk(p, &stats);
  EXPECT_GT(stats.forecasts, 0u);
  // With release_at_sinks, every forecasted SI is released at the end.
  std::set<std::size_t> forecasted, released;
  for (const auto& op : trace) {
    if (op.kind == rispp::sim::TraceOp::Kind::Forecast)
      forecasted.insert(op.si_index);
    if (op.kind == rispp::sim::TraceOp::Kind::Release)
      released.insert(op.si_index);
  }
  EXPECT_EQ(forecasted, released);
}

TEST(GraphWalk, SilencedForecastsEmitNone) {
  AesSetup s(300);
  WalkParams p;
  p.emit_forecasts = false;
  WalkStats stats;
  const auto trace = s.walk(p, &stats);
  EXPECT_EQ(stats.forecasts, 0u);
  for (const auto& op : trace)
    EXPECT_NE(op.kind, rispp::sim::TraceOp::Kind::Forecast);
}

TEST(GraphWalk, EndToEndForecastingBeatsSilence) {
  AesSetup s(800);
  auto run = [&](bool forecasts) {
    WalkParams p;
    p.seed = 5;
    p.emit_forecasts = forecasts;
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = 6;
    cfg.rt.record_events = false;
    rispp::sim::Simulator sim(borrow(s.lib), cfg);
    TraceSource::make_graph_walk(s.graph, s.plan, borrow(s.lib), p)
        ->add_to(sim);
    return sim.run().total_cycles;
  };
  const auto with_fc = run(true);
  const auto without_fc = run(false);
  EXPECT_LT(with_fc, without_fc);
  // MIXCOLUMNS alone accounts for >40 % of the software time; hardware
  // execution must shave a substantial chunk.
  EXPECT_LT(static_cast<double>(with_fc), 0.8 * static_cast<double>(without_fc));
}

TEST(GraphWalk, MaxStepsBoundsInfiniteLoopsAndReportsTruncation) {
  rispp::cfg::BBGraph g;
  const auto a = g.add_block("spin", 10, 1);
  g.add_edge(a, a, 1);
  const auto lib = rispp::aes::si_library();
  WalkParams p;
  p.max_steps = 50;
  WalkStats stats;
  const auto tasks =
      TraceSource::make_graph_walk(g, {}, borrow(lib), p, &stats)->tasks();
  const auto& trace = tasks.at(0).trace;
  EXPECT_EQ(stats.steps, 50u);
  EXPECT_FALSE(stats.reached_sink);
  // The step budget ran out with the loop still spinning: a truncation.
  EXPECT_TRUE(stats.truncated);
  // All compute merges into one op.
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].cycles, 500u);
}

TEST(GraphWalk, SourceRefreshesStatsOnEveryCall) {
  AesSetup s(100);
  WalkParams p;
  p.seed = 7;
  WalkStats stats;
  const auto source =
      TraceSource::make_graph_walk(s.graph, s.plan, borrow(s.lib), p, &stats);
  (void)source->tasks();
  const auto first = stats;
  stats = WalkStats{};
  (void)source->tasks();
  EXPECT_EQ(stats.steps, first.steps);
  EXPECT_EQ(stats.si_invocations, first.si_invocations);
  EXPECT_EQ(stats.forecasts, first.forecasts);
  EXPECT_EQ(stats.reached_sink, first.reached_sink);
  EXPECT_EQ(stats.truncated, first.truncated);
}

TEST(Dot, RendersBlocksEdgesAndHighlights) {
  AesSetup s(200);
  rispp::cfg::DotOptions opt;
  opt.si_name = [&](std::size_t i) { return s.lib.at(i).name(); };
  opt.highlight.insert(s.ids.mixcolumns);
  const auto dot = rispp::cfg::to_dot(s.graph, opt);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("mixcolumns"), std::string::npos);
  EXPECT_NE(dot.find("MIXCOLUMNS x1"), std::string::npos);  // SI usage label
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);     // highlight
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Every block appears.
  for (rispp::cfg::BlockId b = 0; b < s.graph.block_count(); ++b)
    EXPECT_NE(dot.find("b" + std::to_string(b) + " ["), std::string::npos);
}

}  // namespace
