#pragma once
/// Shared fixture for the generator-driven property suites: one seed ↦ one
/// deterministic GeneratorConfig covering the whole parameter matrix (all
/// three lattice shapes, all three distribution families for bitstream and
/// speedup, catalog/SI/molecule sizes from degenerate to saturated). Any
/// failure reproduces from the seed alone:
///
///   ./rispp_genlib describe --seed=N ...   (flags from matrix_config below)
///
/// Used by genlib_property_test.cpp, atom_lattice_property_test.cpp and
/// rt_selection_property_test.cpp so every suite fuzzes the same library
/// population.

#include <cstdint>

#include "rispp/isa/generator.hpp"

namespace genlib_fixture {

/// Deterministic seed → config map. The moduli are coprime-ish so a
/// contiguous seed range steps through the cross product of shape ×
/// bitstream family × speedup family × sizes rather than repeating one
/// combination.
inline rispp::isa::GeneratorConfig matrix_config(std::uint64_t seed) {
  using rispp::isa::Distribution;
  using rispp::isa::LatticeShape;
  rispp::isa::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.name = "fuzz" + std::to_string(seed);
  cfg.shape = seed % 3 == 0   ? LatticeShape::Chains
              : seed % 3 == 1 ? LatticeShape::Flat
                              : LatticeShape::Mixed;
  cfg.rotatable_atoms = 2 + seed % 5;                       // 2..6
  cfg.static_atoms = seed % 4;                              // 0..3
  cfg.sis = 1 + seed % 9;                                   // 1..9
  cfg.molecules_min = 1 + seed % 3;                         // 1..3
  cfg.molecules_max = cfg.molecules_min + (seed / 3) % 7;   // +0..6
  cfg.max_count = static_cast<rispp::atom::Count>(2 + seed % 4);  // 2..5
  switch ((seed / 7) % 3) {
    case 0:
      cfg.bitstream = Distribution::uniform(30000.0, 80000.0);
      break;
    case 1:
      cfg.bitstream = Distribution::lognormal(10.9, 0.4);
      break;
    default:
      cfg.bitstream = Distribution::pareto(30000.0, 2.2);
      break;
  }
  switch ((seed / 11) % 3) {
    case 0:
      cfg.speedup = Distribution::lognormal(3.0, 0.7);
      break;
    case 1:
      cfg.speedup = Distribution::uniform(2.0, 60.0);
      break;
    default:
      cfg.speedup = Distribution::pareto(4.0, 1.5);
      break;
  }
  return cfg;
}

inline rispp::isa::SiLibrary generated_library(std::uint64_t seed) {
  return rispp::isa::LibraryGenerator(matrix_config(seed)).generate();
}

}  // namespace genlib_fixture
