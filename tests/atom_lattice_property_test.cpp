/// Property-based verification of the algebraic claims of paper §3.1:
/// (ℕⁿ, ∪) is an Abelian semigroup with neutral element (0,…,0); (ℕⁿ, ≤) is
/// a partially ordered set; sup/inf make it a complete lattice. The suite
/// sweeps randomized molecule triples through every axiom, and re-runs the
/// load-bearing laws over triples drawn from generated SI libraries
/// (genlib_fixture.hpp) — molecules with the correlated component structure
/// the generator's chains and flat fronts produce, not just i.i.d. noise.

#include <gtest/gtest.h>

#include <vector>

#include "genlib_fixture.hpp"
#include "rispp/atom/molecule.hpp"
#include "rispp/util/rng.hpp"

namespace {

using rispp::atom::Molecule;

constexpr std::size_t kDim = 7;

Molecule random_molecule(rispp::util::Xoshiro256& rng) {
  std::vector<rispp::atom::Count> counts(kDim);
  for (auto& c : counts)
    c = static_cast<rispp::atom::Count>(rng.below(5));  // Table-2-like range
  return Molecule(counts);
}

class LatticeAxioms : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    rispp::util::Xoshiro256 rng(GetParam());
    a_ = random_molecule(rng);
    b_ = random_molecule(rng);
    c_ = random_molecule(rng);
  }
  Molecule a_{kDim}, b_{kDim}, c_{kDim};
};

TEST_P(LatticeAxioms, UniteCommutative) {
  EXPECT_EQ(a_.unite(b_), b_.unite(a_));
}

TEST_P(LatticeAxioms, UniteAssociative) {
  EXPECT_EQ(a_.unite(b_).unite(c_), a_.unite(b_.unite(c_)));
}

TEST_P(LatticeAxioms, UniteIdempotent) { EXPECT_EQ(a_.unite(a_), a_); }

TEST_P(LatticeAxioms, UniteNeutralElement) {
  const Molecule zero(kDim);
  EXPECT_EQ(a_.unite(zero), a_);
  EXPECT_EQ(zero.unite(a_), a_);
}

TEST_P(LatticeAxioms, IntersectCommutativeAssociative) {
  EXPECT_EQ(a_.intersect(b_), b_.intersect(a_));
  EXPECT_EQ(a_.intersect(b_).intersect(c_), a_.intersect(b_.intersect(c_)));
}

TEST_P(LatticeAxioms, AbsorptionLaws) {
  // a ∪ (a ∩ b) = a and a ∩ (a ∪ b) = a — the defining lattice identities.
  EXPECT_EQ(a_.unite(a_.intersect(b_)), a_);
  EXPECT_EQ(a_.intersect(a_.unite(b_)), a_);
}

TEST_P(LatticeAxioms, OrderReflexive) { EXPECT_TRUE(a_.leq(a_)); }

TEST_P(LatticeAxioms, OrderAntisymmetric) {
  if (a_.leq(b_) && b_.leq(a_)) EXPECT_EQ(a_, b_);
}

TEST_P(LatticeAxioms, OrderTransitive) {
  if (a_.leq(b_) && b_.leq(c_)) EXPECT_TRUE(a_.leq(c_));
}

TEST_P(LatticeAxioms, UniteIsLeastUpperBound) {
  const auto sup = a_.unite(b_);
  EXPECT_TRUE(a_.leq(sup));
  EXPECT_TRUE(b_.leq(sup));
  // Least: any other upper bound dominates sup.
  const auto other = sup.unite(c_);  // an arbitrary upper bound
  EXPECT_TRUE(sup.leq(other));
}

TEST_P(LatticeAxioms, IntersectIsGreatestLowerBound) {
  const auto inf = a_.intersect(b_);
  EXPECT_TRUE(inf.leq(a_));
  EXPECT_TRUE(inf.leq(b_));
  const auto other = inf.intersect(c_);  // an arbitrary lower bound
  EXPECT_TRUE(other.leq(inf));
}

TEST_P(LatticeAxioms, ResidualReconstructsUnion) {
  // m ⊕ (m ▷ o) dominates o and equals m ∪ o when counts are per-kind
  // saturating: max(m, o) = m + max(o − m, 0).
  const auto residual = a_.residual_to(b_);
  EXPECT_EQ(a_.plus(residual), a_.unite(b_));
  EXPECT_TRUE(b_.leq(a_.plus(residual)));
}

TEST_P(LatticeAxioms, ResidualZeroIffSupported) {
  EXPECT_EQ(a_.residual_to(b_).is_zero(), b_.leq(a_));
}

TEST_P(LatticeAxioms, DeterminantMonotone) {
  if (a_.leq(b_)) EXPECT_LE(a_.determinant(), b_.determinant());
}

TEST_P(LatticeAxioms, DeterminantSubAdditiveOverUnion) {
  EXPECT_LE(a_.unite(b_).determinant(),
            a_.determinant() + b_.determinant());
  EXPECT_GE(a_.unite(b_).determinant(),
            std::max(a_.determinant(), b_.determinant()));
}

TEST_P(LatticeAxioms, RepresentativeBoundedByExtremes) {
  // inf(M) ≤ Rep(M) ≤ sup(M): the ceil-average sits inside the lattice
  // interval spanned by the molecules.
  const std::vector<Molecule> ms{a_, b_, c_};
  const auto rep = rispp::atom::representative(ms, kDim);
  EXPECT_TRUE(rispp::atom::infimum(ms).leq(rep));
  EXPECT_TRUE(rep.leq(rispp::atom::supremum(ms, kDim)));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, LatticeAxioms,
                         ::testing::Range<std::uint64_t>(1, 65));

/// The same laws over molecule triples drawn from a generated library's
/// actual Molecule options: chain rungs are nested (≤-comparable) and flat
/// fronts are incomparable, so these triples stress both extremes of the
/// partial order in a way i.i.d. components never do. The failure message
/// names the generator seed.
class GeneratedLatticeAxioms
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const auto seed = GetParam();
    const auto lib = genlib_fixture::generated_library(seed);
    std::vector<Molecule> pool;
    for (const auto& si : lib.sis())
      for (const auto& opt : si.options()) pool.push_back(opt.atoms);
    ASSERT_FALSE(pool.empty());
    rispp::util::Xoshiro256 rng(seed ^ 0xa5a5a5a5a5a5a5a5ull);
    dim_ = lib.catalog().size();
    a_ = pool[rng.below(pool.size())];
    b_ = pool[rng.below(pool.size())];
    c_ = pool[rng.below(pool.size())];
  }
  std::size_t dim_ = 0;
  Molecule a_, b_, c_;
};

TEST_P(GeneratedLatticeAxioms, AbsorptionLaws) {
  EXPECT_EQ(a_.unite(a_.intersect(b_)), a_);
  EXPECT_EQ(a_.intersect(a_.unite(b_)), a_);
}

TEST_P(GeneratedLatticeAxioms, OrderPartialOrderLaws) {
  EXPECT_TRUE(a_.leq(a_));
  if (a_.leq(b_) && b_.leq(a_)) EXPECT_EQ(a_, b_);
  if (a_.leq(b_) && b_.leq(c_)) EXPECT_TRUE(a_.leq(c_));
}

TEST_P(GeneratedLatticeAxioms, UniteIsLeastUpperBound) {
  const auto sup = a_.unite(b_);
  EXPECT_TRUE(a_.leq(sup));
  EXPECT_TRUE(b_.leq(sup));
  EXPECT_TRUE(sup.leq(sup.unite(c_)));
}

TEST_P(GeneratedLatticeAxioms, ResidualReconstructsUnion) {
  const auto residual = a_.residual_to(b_);
  EXPECT_EQ(a_.plus(residual), a_.unite(b_));
  EXPECT_EQ(residual.is_zero(), b_.leq(a_));
}

TEST_P(GeneratedLatticeAxioms, DeterminantMonotone) {
  if (a_.leq(b_)) EXPECT_LE(a_.determinant(), b_.determinant());
}

TEST_P(GeneratedLatticeAxioms, RepresentativeBoundedByExtremes) {
  const std::vector<Molecule> ms{a_, b_, c_};
  const auto rep = rispp::atom::representative(ms, dim_);
  EXPECT_TRUE(rispp::atom::infimum(ms).leq(rep));
  EXPECT_TRUE(rep.leq(rispp::atom::supremum(ms, dim_)));
}

INSTANTIATE_TEST_SUITE_P(GeneratedLibraries, GeneratedLatticeAxioms,
                         ::testing::Range<std::uint64_t>(1, 49));

}  // namespace
