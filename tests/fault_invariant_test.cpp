/// Invariant-checking harness for the reconfiguration path under seeded
/// fault schedules: randomized manager-driven workloads and the fig06
/// simulator scenario run with nonzero fault probabilities, with platform
/// invariants asserted after every kernel event. The invariants:
///
///   I1  committed Atom instances never exceed the Atom Container capacity
///   I2  a hardware execution's Molecule is implementable from the Atoms
///       available at that cycle (no execution on a failed/poisoned load)
///   I3  the platform clock only moves forward (wakeups are monotone)
///   I4  every issued rotation reaches exactly one terminal state:
///       Done, Cancelled, or Failed
///   I5  every SI is always executable — hardware or software fallback
///
/// The zero-fault differential (FaultModel::none() byte-identical to the
/// fig06 golden) lives in rt_fault_test.cpp.

#include <gtest/gtest.h>

#include "rispp/hw/fault.hpp"
#include "rispp/isa/si_library.hpp"
#include "rispp/rt/manager.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/rng.hpp"

namespace {

using rispp::hw::FaultModel;
using rispp::isa::borrow;
using rispp::rt::Cycle;
using rispp::rt::RisppManager;
using rispp::rt::RtConfig;
using rispp::rt::RtEvent;

/// I1 + I5 and bookkeeping sanity, checked after every kernel op.
void check_platform_invariants(RisppManager& mgr, Cycle now) {
  const auto capacity = mgr.containers().size();
  ASSERT_LE(mgr.committed_atoms().determinant(), capacity)
      << "I1: committed atoms exceed the container capacity at " << now;
  ASSERT_LE(mgr.containers().usable_count(), capacity);
  // Available atoms are a subset of committed ones (loads still in flight
  // are committed but not yet available).
  ASSERT_TRUE(mgr.available_atoms(now).leq(mgr.committed_atoms()))
      << "available atoms not covered by the committed view at " << now;
}

/// I4, checked once a run is fully drained.
void check_rotation_lifecycle(const std::vector<RtEvent>& events) {
  std::uint64_t starts = 0, terminal = 0;
  for (const auto& e : events) {
    if (e.kind == RtEvent::Kind::RotationStart) ++starts;
    if (e.kind == RtEvent::Kind::RotationDone ||
        e.kind == RtEvent::Kind::RotationCancelled ||
        e.kind == RtEvent::Kind::RotationFailed)
      ++terminal;
  }
  EXPECT_EQ(starts, terminal)
      << "I4: a rotation was issued but never reached Done/Cancelled/Failed";
}

/// Polls the manager at every wakeup until it settles; asserts I3 along the
/// way and that the drain terminates (quarantine must not wedge the wakeup
/// chain into an infinite retry loop).
Cycle drain(RisppManager& mgr, Cycle from) {
  Cycle t = from;
  for (int guard = 0; guard < 20000; ++guard) {
    const auto wake = mgr.next_wakeup(t);
    if (!wake) return t;
    if (*wake <= t) {
      ADD_FAILURE() << "I3: wakeup does not advance the clock";
      return t;
    }
    t = *wake;
    mgr.poll(t);
    check_platform_invariants(mgr, t);
  }
  ADD_FAILURE() << "drain did not terminate — retry loop never settles";
  return t;
}

/// One randomized run: forecasts, executions, releases and polls drawn from
/// a seeded stream, against the H.264 library with probabilistic faults.
void run_randomized(std::uint64_t seed, double p_fail, double p_poison,
                    double p_degrade, unsigned retries) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const auto lib = rispp::isa::SiLibrary::h264();
  RtConfig cfg;
  cfg.atom_containers = 5;
  cfg.faults =
      FaultModel::probabilistic(seed, p_fail, p_poison, p_degrade, 2.0);
  cfg.max_rotation_retries = retries;
  cfg.retry_backoff_cycles = 500;
  RisppManager mgr(borrow(lib), cfg);
  rispp::util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);

  Cycle now = 0;
  std::vector<std::size_t> forecasted;
  for (int op = 0; op < 300; ++op) {
    now += 1 + rng.below(20000);  // I3 by construction: time only advances
    const auto si = static_cast<std::size_t>(rng.below(lib.size()));
    switch (rng.below(4)) {
      case 0:
        mgr.forecast(si, 100 + rng.below(5000), 1.0, now);
        forecasted.push_back(si);
        break;
      case 1: {
        // I5: execute must always answer, hardware or software.
        const auto r = mgr.execute(si, now);
        ASSERT_GT(r.cycles, 0u) << "I5: SI " << si << " not executable";
        if (r.hardware) {
          // I2: the chosen Molecule's rotatable atoms are really loaded.
          ASSERT_NE(r.molecule, nullptr);
          const auto needed =
              lib.catalog().project_rotatable(r.molecule->atoms);
          ASSERT_TRUE(needed.leq(mgr.available_atoms(now)))
              << "I2: hardware Molecule not implementable at " << now;
        }
        break;
      }
      case 2:
        if (!forecasted.empty()) {
          const auto idx = rng.below(forecasted.size());
          mgr.forecast_release(forecasted[idx], now);
          forecasted.erase(forecasted.begin() +
                           static_cast<std::ptrdiff_t>(idx));
        }
        break;
      default:
        mgr.poll(now);
        break;
    }
    check_platform_invariants(mgr, now);
  }

  const auto end = drain(mgr, now);
  check_rotation_lifecycle(mgr.events());

  // I5 after everything settled: every SI in the library still executes,
  // however many containers the fault schedule quarantined.
  for (std::size_t si = 0; si < lib.size(); ++si) {
    const auto r = mgr.execute(si, end + 1 + si);
    EXPECT_GT(r.cycles, 0u) << "I5: SI " << si << " lost its fallback";
  }
  // The fault accounting is consistent with what the containers show.
  unsigned quarantined = 0;
  for (unsigned c = 0; c < mgr.containers().size(); ++c)
    if (mgr.containers().at(c).quarantined) ++quarantined;
  EXPECT_EQ(mgr.counters().get("acs_quarantined"), quarantined);
}

TEST(FaultInvariants, RandomizedWorkloadsModerateFaults) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    run_randomized(seed, 0.10, 0.05, 0.10, 3);
}

TEST(FaultInvariants, RandomizedWorkloadsHostileFaults) {
  // Half of all transfers end badly and the retry budget is tiny: most
  // containers quarantine, yet every SI must keep executing.
  for (std::uint64_t seed = 100; seed <= 103; ++seed)
    run_randomized(seed, 0.35, 0.15, 0.25, 1);
}

TEST(FaultInvariants, DegradationOnlyNeverFailsARotation) {
  const auto lib = rispp::isa::SiLibrary::h264();
  RtConfig cfg;
  cfg.atom_containers = 6;
  cfg.faults = FaultModel::probabilistic(7, 0.0, 0.0, 0.5, 3.0);
  RisppManager mgr(borrow(lib), cfg);
  mgr.forecast(lib.index_of("SATD_4x4"), 5000, 1.0, 0);
  const auto end = drain(mgr, 0);
  EXPECT_EQ(mgr.counters().get("rotations_failed"), 0u);
  EXPECT_EQ(mgr.counters().get("acs_quarantined"), 0u);
  // Stretched transfers still commit: the SI reaches hardware eventually.
  EXPECT_TRUE(mgr.execute(lib.index_of("SATD_4x4"), end + 1).hardware);
  check_rotation_lifecycle(mgr.events());
}

/// The fig06 two-task scenario on the full simulator, under a seeded fault
/// schedule: the run must terminate, the recorded kernel events must close
/// every rotation, and the platform must end with every SI executable.
TEST(FaultInvariants, Fig06ScenarioUnderSeededFaults) {
  const auto lib = rispp::isa::SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  const auto si0 = lib.index_of("HT_2x2");
  const auto si1 = lib.index_of("HT_4x4");

  for (std::uint64_t seed : {3ull, 17ull, 4242ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    rispp::sim::SimConfig cfg;
    cfg.rt.atom_containers = 6;
    cfg.quantum = 25000;
    cfg.rt.faults = FaultModel::probabilistic(seed, 0.2, 0.1, 0.1);
    cfg.rt.max_rotation_retries = 2;
    cfg.rt.retry_backoff_cycles = 2000;
    rispp::sim::Simulator sim(borrow(lib), cfg);

    rispp::sim::Trace a;
    a.push_back(rispp::sim::TraceOp::forecast(satd, 5000));
    for (int i = 0; i < 120; ++i) {
      a.push_back(rispp::sim::TraceOp::compute(10000));
      a.push_back(rispp::sim::TraceOp::si(satd, 50));
    }
    rispp::sim::Trace b;
    b.push_back(rispp::sim::TraceOp::forecast(si0, 50));
    b.push_back(rispp::sim::TraceOp::compute(700000));
    b.push_back(rispp::sim::TraceOp::si(si0, 20));
    b.push_back(rispp::sim::TraceOp::forecast(si1, 2000000));
    for (int i = 0; i < 8; ++i) {
      b.push_back(rispp::sim::TraceOp::compute(40000));
      b.push_back(rispp::sim::TraceOp::si(si1, 100));
    }
    b.push_back(rispp::sim::TraceOp::release(si1));
    b.push_back(rispp::sim::TraceOp::si(si0, 20));
    sim.add_task({"A", std::move(a)});
    sim.add_task({"B", std::move(b)});

    const auto r = sim.run();
    EXPECT_GT(r.total_cycles, 0u);  // the run terminated
    for (const auto& [name, st] : r.per_si)
      EXPECT_EQ(st.invocations, st.hw_invocations + st.sw_invocations);

    // run() copies its event snapshot before the final settle; drain the
    // manager directly so failures booked past the trace end are discovered
    // and every rotation reaches a terminal state.
    auto& mgr = sim.manager();
    const auto end = drain(mgr, r.total_cycles);
    check_rotation_lifecycle(mgr.events());
    for (std::size_t si = 0; si < lib.size(); ++si)
      EXPECT_GT(mgr.execute(si, end + 1 + si).cycles, 0u);
  }
}

}  // namespace
