/// Energy accounting: the meter's arithmetic, and the manager-level
/// behaviours the paper's motivation rests on (rotation costs energy,
/// hardware execution amortizes it, idle dedicated hardware leaks).

#include <gtest/gtest.h>

#include "rispp/rt/energy.hpp"
#include "rispp/rt/manager.hpp"

namespace {

using namespace rispp::rt;

TEST(EnergyMeter, ExecutionEnergy) {
  PowerModel pm;
  pm.core_mw = 200;
  pm.hw_mw = 260;
  EnergyMeter m(pm, /*clock_mhz=*/100.0);
  m.add_execution(1000, /*hardware=*/false);  // 10 µs at 200 mW = 2000 nJ
  EXPECT_DOUBLE_EQ(m.execution_nj(), 2000.0);
  m.add_execution(1000, /*hardware=*/true);  // + 10 µs at 260 mW
  EXPECT_DOUBLE_EQ(m.execution_nj(), 2000.0 + 2600.0);
}

TEST(EnergyMeter, RotationEnergy) {
  PowerModel pm;
  pm.reconfig_mw = 90;
  EnergyMeter m(pm, 100.0);
  m.add_rotation(100000);  // 1000 µs at 90 mW = 90,000 nJ
  EXPECT_DOUBLE_EQ(m.rotation_nj(), 90000.0);
}

TEST(EnergyMeter, LeakageIntegratesOverTime) {
  PowerModel pm;
  pm.leak_mw_per_kslice = 10.0;
  EnergyMeter m(pm, 100.0);
  m.advance_leakage(0, 2000);       // establishes t=0
  m.advance_leakage(100000, 2000);  // 1000 µs at 2 kslices·10 mW = 20,000 nJ
  EXPECT_DOUBLE_EQ(m.leakage_nj(), 20000.0);
  // Repeated timestamps and non-monotone calls are harmless.
  m.advance_leakage(100000, 2000);
  m.advance_leakage(50000, 9999);
  EXPECT_DOUBLE_EQ(m.leakage_nj(), 20000.0);
}

TEST(EnergyMeter, TotalSumsComponents) {
  EnergyMeter m(PowerModel{}, 100.0);
  m.add_execution(100, true);
  m.add_rotation(100);
  m.advance_leakage(0, 0);
  m.advance_leakage(1000, 1000);
  EXPECT_DOUBLE_EQ(m.total_nj(),
                   m.execution_nj() + m.rotation_nj() + m.leakage_nj());
}

TEST(ManagerEnergy, SoftwareExecutionChargesCorePower) {
  const auto lib = rispp::isa::SiLibrary::h264();
  RtConfig cfg;
  cfg.clock_mhz = 100.0;
  RisppManager mgr(borrow(lib), cfg);
  mgr.execute(lib.index_of("SATD_4x4"), 0);
  // 544 cycles = 5.44 µs at 200 mW = 1088 nJ.
  EXPECT_NEAR(mgr.energy().execution_nj(), 1088.0, 1e-9);
  EXPECT_DOUBLE_EQ(mgr.energy().rotation_nj(), 0.0);
}

TEST(ManagerEnergy, RotationChargesPortPower) {
  const auto lib = rispp::isa::SiLibrary::h264();
  RtConfig cfg;
  RisppManager mgr(borrow(lib), cfg);
  mgr.forecast(lib.index_of("HT_2x2"), 100, 1.0, 0);  // rotates 1 Transform
  // Transform: 857.63 µs at 90 mW ≈ 77,187 nJ.
  EXPECT_NEAR(mgr.energy().rotation_nj(), 77187.0, 100.0);
}

TEST(ManagerEnergy, HardwareAmortizesRotationEnergy) {
  // After enough hardware executions, total energy per execution drops
  // below the software per-execution energy — the FDF offset's premise.
  const auto lib = rispp::isa::SiLibrary::h264();
  const auto satd = lib.index_of("SATD_4x4");
  RtConfig cfg;
  cfg.record_events = false;
  RisppManager mgr(borrow(lib), cfg);
  mgr.forecast(satd, 10000, 1.0, 0);
  Cycle now = 1'000'000;  // rotations done
  const int n = 5000;
  for (int i = 0; i < n; ++i) now += mgr.execute(satd, now).cycles;
  const double per_exec = mgr.energy().total_nj() / n;
  const double sw_per_exec = 544 / cfg.clock_mhz * cfg.power.core_mw;
  EXPECT_LT(per_exec, sw_per_exec);
}

TEST(ManagerEnergy, LeakageGrowsWithLoadedAtoms) {
  const auto lib = rispp::isa::SiLibrary::h264();
  RtConfig cfg;
  cfg.record_events = false;
  RisppManager mgr(borrow(lib), cfg);
  EXPECT_EQ(mgr.loaded_slices(), 0u);
  mgr.forecast(lib.index_of("SATD_4x4"), 1000, 1.0, 0);
  mgr.poll(500000);
  // QuadSub + Pack + Transform + SATD = 352 + 406 + 517 + 407 slices.
  EXPECT_EQ(mgr.loaded_slices(), 1682u);
  const auto before = mgr.energy().leakage_nj();
  mgr.poll(1'500'000);
  EXPECT_GT(mgr.energy().leakage_nj(), before);
}

}  // namespace
