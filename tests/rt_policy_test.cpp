/// Policy-seam tests: the string-keyed factory, replacement strategy
/// objects vs the legacy enum path, and the first-class ExhaustiveSelector.

#include <gtest/gtest.h>

#include <algorithm>

#include "rispp/rt/manager.hpp"
#include "rispp/rt/policy.hpp"
#include "rispp/rt/selection.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::rt;
using rispp::util::PreconditionError;

class Policies : public ::testing::Test {
 protected:
  rispp::isa::SiLibrary lib_ = rispp::isa::SiLibrary::h264();

  std::vector<ForecastDemand> encoder_mix() const {
    auto d = [&](const char* name, double w) {
      return ForecastDemand{lib_.index_of(name), w, 1.0, -1};
    };
    return {d("SATD_4x4", 256), d("DCT_4x4", 24), d("HT_4x4", 1),
            d("HT_2x2", 2)};
  }
};

TEST_F(Policies, FactoryListsBuiltins) {
  const auto sel = selection_policy_names();
  EXPECT_TRUE(std::count(sel.begin(), sel.end(), "greedy"));
  EXPECT_TRUE(std::count(sel.begin(), sel.end(), "exhaustive"));
  const auto rep = replacement_policy_names();
  EXPECT_TRUE(std::count(rep.begin(), rep.end(), "lru"));
  EXPECT_TRUE(std::count(rep.begin(), rep.end(), "mru"));
  EXPECT_TRUE(std::count(rep.begin(), rep.end(), "round-robin"));
}

TEST_F(Policies, FactoryConstructsByKey) {
  EXPECT_EQ(make_selection_policy("greedy", lib_)->name(), "greedy");
  EXPECT_EQ(make_selection_policy("exhaustive", lib_)->name(), "exhaustive");
  EXPECT_EQ(make_replacement_policy("lru")->name(), "lru");
  EXPECT_EQ(make_replacement_policy("mru")->name(), "mru");
  EXPECT_EQ(make_replacement_policy("round-robin")->name(), "round-robin");
}

TEST_F(Policies, UnknownKeysThrowListingRegisteredNames) {
  try {
    make_selection_policy("nope", lib_);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("greedy"), std::string::npos);
  }
  EXPECT_THROW(make_replacement_policy("nope"), PreconditionError);
}

TEST_F(Policies, CustomRegistrationIsConstructible) {
  register_selection_policy("test-greedy-alias", [](const auto& lib) {
    return std::make_unique<GreedySelector>(lib);
  });
  register_replacement_policy(
      "test-lru-alias", [] { return std::make_unique<LruReplacement>(); });
  EXPECT_EQ(make_selection_policy("test-greedy-alias", lib_)->name(),
            "greedy");
  EXPECT_EQ(make_replacement_policy("test-lru-alias")->name(), "lru");
  // And a manager can be configured with the custom keys end to end.
  RtConfig cfg;
  cfg.selection_policy = "test-greedy-alias";
  cfg.replacement_policy = "test-lru-alias";
  RisppManager mgr(borrow(lib_), cfg);
  EXPECT_EQ(mgr.selection_policy().name(), "greedy");
  EXPECT_EQ(mgr.replacement_policy().name(), "lru");
}

// The enum→key shim: the deprecated RtConfig::set_victim_policy() path must
// keep steering the replacement factory while no string key is set. This
// test is the one sanctioned user of the deprecated setter.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(Policies, LegacyVictimPolicyEnumMapsToFactoryKeys) {
  EXPECT_STREQ(to_policy_name(VictimPolicy::LruExcess), "lru");
  EXPECT_STREQ(to_policy_name(VictimPolicy::MruExcess), "mru");
  EXPECT_STREQ(to_policy_name(VictimPolicy::RoundRobinExcess), "round-robin");
  RtConfig cfg;
  cfg.set_victim_policy(VictimPolicy::MruExcess);  // no factory key set
  RisppManager mgr(borrow(lib_), cfg);
  EXPECT_EQ(mgr.replacement_policy().name(), "mru");
  // The string key wins over the enum as soon as it is non-empty.
  cfg.replacement_policy = "round-robin";
  RisppManager keyed(borrow(lib_), cfg);
  EXPECT_EQ(keyed.replacement_policy().name(), "round-robin");
}
#pragma GCC diagnostic pop

TEST_F(Policies, LruAndMruPicksMatchTheLegacyEnumPath) {
  const auto& cat = lib_.catalog();
  const auto transform = cat.index_of("Transform");
  for (const auto policy :
       {VictimPolicy::LruExcess, VictimPolicy::MruExcess}) {
    ContainerFile legacy(3, cat), strategic(3, cat);
    for (unsigned c = 0; c < 3; ++c) {
      legacy.start_rotation(c, transform, 10 * (c + 1), kNoTask);
      strategic.start_rotation(c, transform, 10 * (c + 1), kNoTask);
    }
    legacy.refresh(30);
    strategic.refresh(30);
    rispp::atom::Molecule one(cat.size());
    one.set(transform, 1);
    legacy.touch(one, 100);
    strategic.touch(one, 100);
    auto obj = make_replacement_policy(to_policy_name(policy));
    const auto a = legacy.choose_victim(cat.zero(), 200, policy);
    const auto b = strategic.choose_victim(cat.zero(), 200, *obj);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, *b) << to_policy_name(policy);
  }
}

TEST_F(Policies, SharedBenefitIsPolicyIndependent) {
  const auto greedy = make_selection_policy("greedy", lib_);
  const auto exhaustive = make_selection_policy("exhaustive", lib_);
  const auto demands = encoder_mix();
  const auto config = greedy->plan(demands, 8).target;
  EXPECT_DOUBLE_EQ(greedy->benefit(config, demands),
                   exhaustive->benefit(config, demands));
}

TEST_F(Policies, ExhaustiveSelectorPlansStepsReachingItsTarget) {
  const ExhaustiveSelector sel(lib_);
  const GreedySelector greedy(lib_);
  const auto demands = encoder_mix();
  for (std::uint64_t budget : {4ull, 6ull, 8ull}) {
    const auto plan = sel.plan(demands, budget);
    // Target matches the exhaustive() reference search.
    EXPECT_EQ(plan.target, greedy.exhaustive(demands, budget).target);
    // Steps stay within the target and, summed, support its benefit: the
    // kernel issues rotations from steps, so an unreachable target would
    // never come online.
    rispp::atom::Molecule cum(lib_.catalog().size());
    for (const auto& s : plan.steps) {
      cum = cum.plus(s.additional);
      EXPECT_TRUE(cum.leq(plan.target));
    }
    EXPECT_DOUBLE_EQ(sel.benefit(cum, demands),
                     sel.benefit(plan.target, demands));
  }
}

TEST_F(Policies, PolicyKindTracksOverrides) {
  // The devirtualized dispatch may only bypass the factory's virtual
  // product while the key still means the stock builtin. Custom keys — and
  // builtin names that have been re-registered — must report Custom so the
  // dispatch falls back to whatever the factory produces.
  EXPECT_EQ(selection_policy_kind("exhaustive"), SelectionKind::Exhaustive);
  EXPECT_EQ(replacement_policy_kind("lru"), ReplacementKind::Lru);
  EXPECT_EQ(replacement_policy_kind("mru"), ReplacementKind::Mru);
  EXPECT_EQ(replacement_policy_kind("round-robin"),
            ReplacementKind::RoundRobin);
  EXPECT_EQ(selection_policy_kind("no-such-policy"), SelectionKind::Custom);
  EXPECT_EQ(replacement_policy_kind("no-such-policy"),
            ReplacementKind::Custom);
  // Freshly registered custom keys are Custom (tests run one-per-process
  // under gtest_discover_tests, so register here rather than relying on
  // CustomRegistrationIsConstructible having run).
  register_selection_policy("kind-test-selector", [](const auto& lib) {
    return std::make_unique<GreedySelector>(lib);
  });
  register_replacement_policy(
      "kind-test-replacer", [] { return std::make_unique<LruReplacement>(); });
  EXPECT_EQ(selection_policy_kind("kind-test-selector"),
            SelectionKind::Custom);
  EXPECT_EQ(replacement_policy_kind("kind-test-replacer"),
            ReplacementKind::Custom);

  // Re-registering a builtin name demotes it: even a behaviour-identical
  // replacement factory must reach the manager through the virtual seam,
  // since the concrete type behind the key is no longer known. (This
  // demotion is process-global, which is why the test checks "greedy" last
  // and re-registers the stock factory semantics.)
  EXPECT_EQ(selection_policy_kind("greedy"), SelectionKind::Greedy);
  register_selection_policy("greedy", [](const auto& lib) {
    return std::make_unique<GreedySelector>(lib);
  });
  EXPECT_EQ(selection_policy_kind("greedy"), SelectionKind::Custom);

  // A default-configured manager still works end to end on the demoted key:
  // same GreedySelector behaviour, now via the fallback dispatch arm.
  RtConfig cfg;
  cfg.atom_containers = 6;
  RisppManager mgr(borrow(lib_), cfg);
  EXPECT_EQ(mgr.selection_policy().name(), "greedy");
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  EXPECT_GT(mgr.rotations_performed(), 0u);
  EXPECT_TRUE(mgr.execute(lib_.index_of("SATD_4x4"), 10'000'000).hardware);
}

TEST_F(Policies, ManagerRotatesUnderExhaustiveSelection) {
  RtConfig cfg;
  cfg.atom_containers = 6;
  cfg.selection_policy = "exhaustive";
  RisppManager mgr(borrow(lib_), cfg);
  EXPECT_EQ(mgr.selection_policy().name(), "exhaustive");
  mgr.forecast(lib_.index_of("SATD_4x4"), 5000, 1.0, 0);
  EXPECT_GT(mgr.rotations_performed(), 0u);
  // After the transfers complete, the SI executes in hardware.
  const auto res = mgr.execute(lib_.index_of("SATD_4x4"), 10'000'000);
  EXPECT_TRUE(res.hardware);
}

}  // namespace
