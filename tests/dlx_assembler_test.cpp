#include <gtest/gtest.h>

#include "rispp/dlx/assembler.hpp"

namespace {

using namespace rispp::dlx;

TEST(Assembler, BasicInstructions) {
  const auto prog = assemble(
      "  addi r1, r0, 5\n"
      "  add  r2, r1, r1\n"
      "  halt\n");
  ASSERT_EQ(prog.code.size(), 3u);
  EXPECT_EQ(prog.code[0].op, Op::Addi);
  EXPECT_EQ(prog.code[0].rd, 1);
  EXPECT_EQ(prog.code[0].imm, 5);
  EXPECT_EQ(prog.code[1].op, Op::Add);
  EXPECT_EQ(prog.code[2].op, Op::Halt);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto prog = assemble(
      "start: addi r1, r1, 1\n"
      "       bne  r1, r2, start\n"
      "       j    end\n"
      "       nop\n"
      "end:   halt\n");
  EXPECT_EQ(prog.code[1].imm, 0);  // back to start
  EXPECT_EQ(prog.code[2].imm, 4);  // forward to end
}

TEST(Assembler, MemoryOperandsAndData) {
  const auto prog = assemble(
      "  .data 10 20 0x1f -3\n"
      "  lw r1, 8(r2)\n"
      "  sw r1, -4(r3)\n"
      "  halt\n");
  ASSERT_EQ(prog.data.size(), 4u);
  EXPECT_EQ(prog.data[2], 0x1fu);
  EXPECT_EQ(prog.data[3], static_cast<std::uint32_t>(-3));
  EXPECT_EQ(prog.code[0].imm, 8);
  EXPECT_EQ(prog.code[0].rs, 2);
  EXPECT_EQ(prog.code[1].imm, -4);
}

TEST(Assembler, RisppExtensionOps) {
  const auto prog = assemble(
      "  forecast SATD_4x4, 256\n"
      "  si SATD_4x4 r4, r5, r6\n"
      "  release SATD_4x4\n"
      "  halt\n");
  EXPECT_EQ(prog.code[0].op, Op::Forecast);
  EXPECT_EQ(prog.code[0].si_name, "SATD_4x4");
  EXPECT_EQ(prog.code[0].imm, 256);
  EXPECT_EQ(prog.code[1].op, Op::Si);
  EXPECT_EQ(prog.code[1].rd, 4);
  EXPECT_EQ(prog.code[1].rs, 5);
  EXPECT_EQ(prog.code[1].rt, 6);
  EXPECT_EQ(prog.code[2].op, Op::Release);
}

TEST(Assembler, CommentsAndCaseInsensitivity) {
  const auto prog = assemble(
      "; full line comment\n"
      "  ADDI r1, r0, 1  # trailing comment\n"
      "  HALT\n");
  EXPECT_EQ(prog.code.size(), 2u);
  EXPECT_EQ(prog.code[0].op, Op::Addi);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto expect_error_at = [](const std::string& src, std::size_t line) {
    try {
      assemble(src);
      FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
      EXPECT_EQ(e.line(), line) << e.what();
    }
  };
  expect_error_at("  frobnicate r1\n", 1);                 // unknown mnemonic
  expect_error_at("  add r1, r2\n", 1);                    // operand count
  expect_error_at("  addi r1, r0, xyz\n", 1);              // bad immediate
  expect_error_at("  addi r99, r0, 1\n", 1);               // bad register
  expect_error_at("  lw r1, 8\n", 1);                      // missing (base)
  expect_error_at("nop\n  j nowhere\n  halt\n", 2);        // undefined label
  expect_error_at("a: nop\na: halt\n", 2);                 // duplicate label
  expect_error_at("", 0);                                  // empty program
}

TEST(Assembler, MultipleLabelsOneLine) {
  const auto prog = assemble("a: b: halt\n");
  EXPECT_EQ(prog.code.size(), 1u);
}

}  // namespace
