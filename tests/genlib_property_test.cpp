/// Property-fuzz harness over generated SI libraries (ISSUE: break free of
/// Table 2). Hundreds of seeded isa::LibraryGenerator libraries — the full
/// genlib_fixture matrix of shapes, sizes and distribution families — run
/// through:
///
///   * structural invariants (valid SiLibrary, clamps honoured, Molecule
///     dimensions/counts in range, hardware always beats software),
///   * the lattice-shape contracts (chains totally ordered with strictly
///     decreasing latency; flat fronts pairwise ≤-incomparable; mixed is
///     per-SI one of the two),
///   * isa::io round-trips (generate → write → parse → write byte-identical,
///     and generate() itself is byte-deterministic),
///   * the platform fault invariants I1–I5 (fault_invariant_test.cpp) with
///     randomized manager workloads over every selection × replacement
///     policy combination,
///   * a --jobs differential through the exp:: engine (workload=generated +
///     lib_* axes): worker count must leak into neither the result table
///     nor the per-point run reports.
///
/// Every check runs under SCOPED_TRACE carrying the seed and the full
/// generator parameter line, so a failure names its reproduction.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "genlib_fixture.hpp"
#include "rispp/exp/platform.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/hw/fault.hpp"
#include "rispp/isa/io.hpp"
#include "rispp/rt/manager.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/sim/trace_io.hpp"
#include "rispp/util/rng.hpp"
#include "rispp/workload/trace_source.hpp"

namespace {

using genlib_fixture::generated_library;
using genlib_fixture::matrix_config;
using rispp::atom::Molecule;
using rispp::isa::LatticeShape;
using rispp::isa::LibraryGenerator;
using rispp::isa::SiLibrary;
using rispp::rt::Cycle;
using rispp::rt::RisppManager;
using rispp::rt::RtConfig;
using rispp::rt::RtEvent;

constexpr std::uint64_t kSeedBegin = 1;
constexpr std::uint64_t kSeedEnd = 201;  // 200 libraries per suite

std::string trace_label(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) + " [" +
         matrix_config(seed).describe() + "]";
}

TEST(GenlibProperty, StructuralInvariantsAcrossSeedMatrix) {
  for (std::uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
    SCOPED_TRACE(trace_label(seed));
    const auto cfg = matrix_config(seed);
    const auto lib = generated_library(seed);
    const auto& cat = lib.catalog();

    ASSERT_EQ(cat.size(), cfg.rotatable_atoms + cfg.static_atoms);
    ASSERT_EQ(lib.size(), cfg.sis);
    for (std::size_t a = 0; a < cat.size(); ++a) {
      const auto& info = cat.at(a);
      EXPECT_EQ(info.rotatable, a < cfg.rotatable_atoms);
      EXPECT_EQ(info.name,
                (info.rotatable ? "G" : "M") +
                    std::to_string(info.rotatable ? a
                                                  : a - cfg.rotatable_atoms));
      EXPECT_GE(info.hardware.bitstream_bytes, 1u);
      EXPECT_LE(info.hardware.bitstream_bytes, 16u * 1024 * 1024);
      EXPECT_GE(info.hardware.slices, 16u);
      EXPECT_LE(info.hardware.slices, 1024u);
      EXPECT_EQ(info.hardware.luts, 2 * info.hardware.slices);
    }

    for (const auto& si : lib.sis()) {
      SCOPED_TRACE(si.name());
      ASSERT_GE(si.options().size(), 1u);
      EXPECT_LE(si.options().size(), cfg.molecules_max);
      for (const auto& opt : si.options()) {
        ASSERT_EQ(opt.atoms.dimension(), cat.size());
        EXPECT_GT(opt.cycles, 0u);
        EXPECT_LT(opt.cycles, si.software_cycles())
            << "a hardware Molecule must beat the software routine";
        // At least one rotatable Atom — otherwise the option would be free
        // hardware and the Pareto front degenerate.
        EXPECT_GE(cat.rotatable_determinant(opt.atoms), 1u);
        for (std::size_t a = 0; a < cat.size(); ++a) {
          EXPECT_LE(opt.atoms[a], cfg.max_count);
          if (!cat.at(a).rotatable) {
            EXPECT_LE(opt.atoms[a], 1u);
          }
        }
      }
      // The Pareto front machinery accepts the SI (non-empty by I5's
      // software fallback plus at least one hardware option).
      EXPECT_GE(si.pareto_front(cat).size(), 1u);
      EXPECT_GT(si.max_speedup(), 1.0);
    }
  }
}

/// One SI's options form a nested ≤-chain with strictly decreasing cycles.
bool is_upgrade_chain(const SiLibrary& lib,
                      const rispp::isa::SpecialInstruction& si) {
  for (std::size_t m = 1; m < si.options().size(); ++m) {
    if (!si.options()[m - 1].atoms.leq(si.options()[m].atoms)) return false;
    if (si.options()[m].cycles >= si.options()[m - 1].cycles) return false;
  }
  (void)lib;
  return true;
}

/// One SI's options are pairwise ≤-incomparable on their rotatable parts.
bool is_flat_front(const SiLibrary& lib,
                   const rispp::isa::SpecialInstruction& si) {
  const auto& cat = lib.catalog();
  for (std::size_t i = 0; i < si.options().size(); ++i)
    for (std::size_t j = i + 1; j < si.options().size(); ++j) {
      const auto a = cat.project_rotatable(si.options()[i].atoms);
      const auto b = cat.project_rotatable(si.options()[j].atoms);
      if (a.leq(b) || b.leq(a)) return false;
    }
  return true;
}

TEST(GenlibProperty, ShapeGovernsTheMoleculeLattice) {
  for (std::uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
    SCOPED_TRACE(trace_label(seed));
    const auto cfg = matrix_config(seed);
    const auto lib = generated_library(seed);
    for (const auto& si : lib.sis()) {
      SCOPED_TRACE(si.name());
      const bool chain = is_upgrade_chain(lib, si);
      const bool flat = is_flat_front(lib, si);
      switch (cfg.shape) {
        case LatticeShape::Chains:
          EXPECT_TRUE(chain) << "chains library grew a non-nested SI";
          break;
        case LatticeShape::Flat:
          EXPECT_TRUE(flat) << "flat library grew comparable options";
          break;
        case LatticeShape::Mixed:
          EXPECT_TRUE(chain || flat)
              << "mixed SI is neither a chain nor a flat front";
          break;
      }
    }
  }
}

TEST(GenlibProperty, GenerationAndIoAreByteDeterministic) {
  for (std::uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
    SCOPED_TRACE(trace_label(seed));
    const auto cfg = matrix_config(seed);
    const auto text = rispp::isa::write_si_library(generated_library(seed));
    // Determinism: a fresh generator instance reproduces the bytes.
    EXPECT_EQ(text,
              rispp::isa::write_si_library(LibraryGenerator(cfg).generate()));
    // io round-trip: save → load → save is byte-identical.
    const auto reparsed = rispp::isa::parse_si_library(text);
    EXPECT_EQ(text, rispp::isa::write_si_library(reparsed));
    EXPECT_EQ(reparsed.size(), cfg.sis);
    EXPECT_EQ(reparsed.catalog().size(),
              cfg.rotatable_atoms + cfg.static_atoms);
  }
}

// --- I1–I5 under faults, generated libraries -----------------------------
// The harness mirrors fault_invariant_test.cpp (which pins the H.264
// library); here every seed also picks its own selection × replacement
// policies so the invariants hold for every registered combination.

void check_platform_invariants(RisppManager& mgr, Cycle now) {
  const auto capacity = mgr.containers().size();
  ASSERT_LE(mgr.committed_atoms().determinant(), capacity)
      << "I1: committed atoms exceed the container capacity at " << now;
  ASSERT_TRUE(mgr.available_atoms(now).leq(mgr.committed_atoms()))
      << "available atoms not covered by the committed view at " << now;
}

void check_rotation_lifecycle(const std::vector<RtEvent>& events) {
  std::uint64_t starts = 0, terminal = 0;
  for (const auto& e : events) {
    if (e.kind == RtEvent::Kind::RotationStart) ++starts;
    if (e.kind == RtEvent::Kind::RotationDone ||
        e.kind == RtEvent::Kind::RotationCancelled ||
        e.kind == RtEvent::Kind::RotationFailed)
      ++terminal;
  }
  EXPECT_EQ(starts, terminal)
      << "I4: a rotation was issued but never reached Done/Cancelled/Failed";
}

Cycle drain(RisppManager& mgr, Cycle from) {
  Cycle t = from;
  for (int guard = 0; guard < 20000; ++guard) {
    const auto wake = mgr.next_wakeup(t);
    if (!wake) return t;
    if (*wake <= t) {
      ADD_FAILURE() << "I3: wakeup does not advance the clock";
      return t;
    }
    t = *wake;
    mgr.poll(t);
    check_platform_invariants(mgr, t);
  }
  ADD_FAILURE() << "drain did not terminate — retry loop never settles";
  return t;
}

TEST(GenlibProperty, FaultInvariantsAcrossPoliciesAndShapes) {
  static const char* kReplacement[] = {"lru", "mru", "round-robin"};
  for (std::uint64_t seed = kSeedBegin; seed < kSeedEnd; ++seed) {
    const auto lib = generated_library(seed);
    RtConfig cfg;
    cfg.atom_containers = 3 + static_cast<unsigned>(seed % 5);
    cfg.faults = rispp::hw::FaultModel::probabilistic(seed, 0.12, 0.05, 0.10,
                                                      2.0);
    cfg.max_rotation_retries = static_cast<unsigned>(seed % 4);
    cfg.retry_backoff_cycles = 500;
    // Exhaustive selection enumerates Molecule combinations; keep it to the
    // small libraries and let greedy carry the big ones.
    cfg.selection_policy =
        (seed % 5 == 0 && lib.size() <= 3) ? "exhaustive" : "greedy";
    cfg.replacement_policy = kReplacement[seed % 3];
    SCOPED_TRACE(trace_label(seed) + " containers=" +
                 std::to_string(cfg.atom_containers) + " sel=" +
                 cfg.selection_policy + " rep=" + cfg.replacement_policy +
                 " retries=" + std::to_string(cfg.max_rotation_retries));

    RisppManager mgr(rispp::isa::borrow(lib), cfg);
    rispp::util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);
    Cycle now = 0;
    std::vector<std::size_t> forecasted;
    for (int op = 0; op < 120; ++op) {
      now += 1 + rng.below(20000);  // I3 by construction
      const auto si = static_cast<std::size_t>(rng.below(lib.size()));
      switch (rng.below(4)) {
        case 0:
          mgr.forecast(si, 100 + rng.below(5000), 1.0, now);
          forecasted.push_back(si);
          break;
        case 1: {
          const auto r = mgr.execute(si, now);
          ASSERT_GT(r.cycles, 0u) << "I5: SI " << si << " not executable";
          if (r.hardware) {
            ASSERT_NE(r.molecule, nullptr);
            const auto needed =
                lib.catalog().project_rotatable(r.molecule->atoms);
            ASSERT_TRUE(needed.leq(mgr.available_atoms(now)))
                << "I2: hardware Molecule not implementable at " << now;
          }
          break;
        }
        case 2:
          if (!forecasted.empty()) {
            const auto idx = rng.below(forecasted.size());
            mgr.forecast_release(forecasted[idx], now);
            forecasted.erase(forecasted.begin() +
                             static_cast<std::ptrdiff_t>(idx));
          }
          break;
        default:
          mgr.poll(now);
          break;
      }
      check_platform_invariants(mgr, now);
    }

    const auto end = drain(mgr, now);
    check_rotation_lifecycle(mgr.events());
    for (std::size_t si = 0; si < lib.size(); ++si) {
      const auto r = mgr.execute(si, end + 1 + si);
      EXPECT_GT(r.cycles, 0u) << "I5: SI " << si << " lost its fallback";
    }
    unsigned quarantined = 0;
    for (unsigned c = 0; c < mgr.containers().size(); ++c)
      if (mgr.containers().at(c).quarantined) ++quarantined;
    EXPECT_EQ(mgr.counters().get("acs_quarantined"), quarantined);
  }
}

// --- jobs differential through the exp engine ----------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(GenlibDifferential, WorkerCountLeaksIntoNothing) {
  const auto platform = rispp::exp::Platform::builtin("h264");
  const auto dir1 = testing::TempDir() + "genlib_jobs1";
  const auto dir4 = testing::TempDir() + "genlib_jobs4";
  for (const auto& d : {dir1, dir4}) {
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    ASSERT_FALSE(ec) << d;
  }

  const auto sweep_for = [](const std::string& report_dir) {
    rispp::exp::Sweep sweep;
    sweep.axis("workload", {"generated"})
        .axis("lib_shape", {"chains", "flat", "mixed"})
        .axis("lib_seed", {"21", "22", "23"})
        .axis("containers", {"5"})
        .axis("wl_tasks", {"3"})
        .axis("wl_events", {"40"})
        .axis("wl_seed", {"77"})
        .axis("report_dir", {report_dir});
    return sweep;
  };

  // Same generator seeds, jobs 1 vs 4: the rendered table must match cell
  // for cell once the (intentionally different) report_dir axis column is
  // removed, and every per-point run report must be byte-identical.
  const auto serial =
      rispp::exp::run_sim_sweep(platform, sweep_for(dir1), 1);
  const auto parallel =
      rispp::exp::run_sim_sweep(platform, sweep_for(dir4), 4);
  ASSERT_EQ(serial.rows().size(), parallel.rows().size());
  const auto without_report_dir = [](const rispp::exp::ResultRow& row) {
    std::vector<std::pair<std::string, std::string>> cells;
    for (const auto& cell : row.cells)
      if (cell.first != "report_dir") cells.push_back(cell);
    return cells;
  };
  for (std::size_t i = 0; i < serial.rows().size(); ++i) {
    EXPECT_EQ(serial.rows()[i].point, parallel.rows()[i].point);
    EXPECT_EQ(serial.rows()[i].seed, parallel.rows()[i].seed);
    EXPECT_EQ(without_report_dir(serial.rows()[i]),
              without_report_dir(parallel.rows()[i]))
        << "row " << i << " differs across --jobs";
  }
  for (std::size_t i = 0; i < serial.rows().size(); ++i) {
    const auto name = "/point_" + std::to_string(i) + ".report.json";
    EXPECT_EQ(slurp(dir1 + name), slurp(dir4 + name))
        << "run report " << i << " differs across --jobs";
  }
}

/// The generated TraceSource honours the seam contract: tasks() is pure,
/// and the emitted workload exercises forecasts and releases over the
/// generated SI names.
TEST(GenlibProperty, GeneratedWorkloadIsPureAndForecastAnnotated) {
  for (std::uint64_t seed : {5ull, 50ull, 150ull}) {
    SCOPED_TRACE(trace_label(seed));
    auto lib_ptr = rispp::isa::share(generated_library(seed));
    rispp::workload::GeneratedWorkloadParams params;
    params.seed = seed;
    params.tasks = 3;
    params.events_per_phase = 60;
    params.task_skew = 0.5;
    rispp::workload::PhasedStats stats;
    const auto source = rispp::workload::TraceSource::make_generated(
        lib_ptr, params, &stats);
    const auto once = source->tasks();
    const auto twice = source->tasks();
    ASSERT_EQ(once.size(), params.tasks);
    std::ostringstream first, second;
    rispp::sim::write_tasks(first, once, *lib_ptr);
    rispp::sim::write_tasks(second, twice, *lib_ptr);
    EXPECT_EQ(first.str(), second.str()) << "tasks() is not pure";
    EXPECT_GT(stats.si_invocations, 0u);
    EXPECT_GT(stats.forecasts, 0u);
    EXPECT_EQ(stats.phases.size(), params.phases);
    EXPECT_GT(stats.releases, 0u);
  }
}

}  // namespace
