/// Fuzz-style corpus test for the text parsers: every checked-in malformed
/// input under tests/data/corpus/ (truncated lines, NUL bytes, giant
/// counts, binary garbage) must be rejected with the parser's structured
/// error type — isa::ParseError, sim::TraceParseError, or util::Error — and
/// never crash, hang, or throw anything unstructured. New crash inputs
/// found in the wild are added as files; the harness picks them up without
/// a code change (docs/testing.md).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "rispp/isa/io.hpp"
#include "rispp/isa/si_library.hpp"
#include "rispp/obs/csv_trace.hpp"
#include "rispp/sim/trace_io.hpp"
#include "rispp/util/error.hpp"

namespace {

namespace fs = std::filesystem;

/// Corpus entries for one parser family, sorted for stable test output.
/// The directory must exist and be non-empty — an empty corpus means the
/// data dir is mis-wired, which must fail loudly rather than vacuously pass.
std::vector<fs::path> corpus(const char* family) {
  const fs::path dir = fs::path(RISPP_TEST_DATA_DIR) / "corpus" / family;
  EXPECT_TRUE(fs::is_directory(dir)) << "corpus dir missing: " << dir;
  std::vector<fs::path> files;
  if (fs::is_directory(dir))
    for (const auto& e : fs::directory_iterator(dir))
      if (e.is_regular_file()) files.push_back(e.path());
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << "empty corpus: " << dir;
  return files;
}

/// Runs `parse` on one corpus file and requires the structured rejection:
/// ExpectedError (or a subclass) thrown, nothing else.
template <typename ExpectedError, typename ParseFn>
void expect_structured_rejection(const fs::path& file, ParseFn parse) {
  SCOPED_TRACE("corpus file: " + file.filename().string());
  std::ifstream in(file, std::ios::binary);
  ASSERT_TRUE(in.good());
  try {
    parse(in);
    ADD_FAILURE() << "malformed input was accepted";
  } catch (const ExpectedError& e) {
    EXPECT_STRNE(e.what(), "") << "rejection without a diagnostic";
  } catch (const std::exception& e) {
    ADD_FAILURE() << "unstructured exception type escaped the parser: "
                  << e.what();
  }
}

TEST(ParserCorpus, SiLibraryParserRejectsEveryMalformedInput) {
  for (const auto& file : corpus("si"))
    expect_structured_rejection<rispp::isa::ParseError>(
        file, [](std::istream& in) { (void)rispp::isa::parse_si_library(in); });
}

TEST(ParserCorpus, TraceParserRejectsEveryMalformedInput) {
  const auto lib = rispp::isa::SiLibrary::h264();
  for (const auto& file : corpus("trace"))
    expect_structured_rejection<rispp::sim::TraceParseError>(
        file,
        [&](std::istream& in) { (void)rispp::sim::parse_tasks(in, lib); });
}

TEST(ParserCorpus, CsvTraceParserRejectsEveryMalformedInput) {
  for (const auto& file : corpus("obs_csv"))
    expect_structured_rejection<rispp::util::Error>(file, [](std::istream& in) {
      (void)rispp::obs::read_csv_trace(in, nullptr);
    });
}

// A few inline cases pinning the *kind* of rejection for inputs the corpus
// covers as opaque bytes — so a parser regression shows up with a readable
// diff, not just "file X no longer throws".

TEST(ParserCorpus, SiLibraryDiagnosticsCarryLineNumbers) {
  try {
    (void)rispp::isa::parse_si_library(
        "catalog\n  atom A slices=1 luts=2 bitstream=100\nend\n"
        "si X software=5\n  molecule cycles=1 Z=1\nend\n");
    FAIL() << "unknown atom accepted";
  } catch (const rispp::isa::ParseError& e) {
    EXPECT_EQ(e.line(), 5u);
    EXPECT_NE(std::string(e.what()).find("unknown atom"), std::string::npos);
  }
}

TEST(ParserCorpus, TraceDiagnosticsCarryLineNumbers) {
  const auto lib = rispp::isa::SiLibrary::h264();
  try {
    (void)rispp::sim::parse_tasks("task a\n  compute -5\n", lib);
    FAIL() << "negative count accepted";
  } catch (const rispp::sim::TraceParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(ParserCorpus, SignedCountsAreRejectedNotWrapped) {
  // std::stoull accepts "-1" and wraps it to 2^64-1 with no exception; the
  // library parser must reject signed values the way the trace parser does
  // (found by minimizing generator output — genlib_negative_count.si).
  try {
    (void)rispp::isa::parse_si_library(
        "catalog\n  atom A slices=1 luts=2 bitstream=100\nend\n"
        "si X software=5\n  molecule cycles=1 A=-1\nend\n");
    FAIL() << "signed atom count accepted";
  } catch (const rispp::isa::ParseError& e) {
    EXPECT_EQ(e.line(), 5u);
    EXPECT_NE(std::string(e.what()).find("invalid number"),
              std::string::npos);
  }
}

TEST(ParserCorpus, GiantCountsOverflowToErrorsNotWraparound) {
  // 26 nines overflows uint64_t; both parsers must say "invalid number"
  // instead of wrapping modulo 2^64 into a silently-wrong value.
  EXPECT_THROW(
      (void)rispp::isa::parse_si_library(
          "catalog\n  atom A slices=99999999999999999999999999 luts=2 "
          "bitstream=100\nend\nsi X software=5\n  molecule cycles=1 A=1\n"
          "end\n"),
      rispp::isa::ParseError);
  const auto lib = rispp::isa::SiLibrary::h264();
  EXPECT_THROW((void)rispp::sim::parse_tasks(
                   "task a\n  compute 99999999999999999999999999\n", lib),
               rispp::sim::TraceParseError);
}

}  // namespace
