/// Property testing of the Molecule selector over RANDOM SI libraries (not
/// just the paper's nested H.264 lattice): plan feasibility, step soundness,
/// monotonicity in budget, bounded loss vs the exhaustive optimum, and the
/// fault-aware properties — selection plans around quarantined Atom
/// Containers, and replacement never evicts mid-rotation or targets a
/// blocked container.
///
/// Every property body takes the library as a parameter, so the same checks
/// run twice: over the ad-hoc random_library() instances (the original
/// population — rng streams unchanged) and over isa::LibraryGenerator
/// libraries from the genlib_fixture matrix, whose chains and flat fronts
/// have the correlated structure the ad-hoc generator never produces.

#include <gtest/gtest.h>

#include "genlib_fixture.hpp"
#include "rispp/hw/fault.hpp"
#include "rispp/rt/manager.hpp"
#include "rispp/rt/selection.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::rt;
using rispp::atom::Molecule;
using rispp::isa::AtomCatalog;
using rispp::isa::MoleculeOption;
using rispp::isa::SiLibrary;
using rispp::isa::SpecialInstruction;

SiLibrary random_library(rispp::util::Xoshiro256& rng) {
  const std::size_t atoms = 2 + rng.below(4);
  std::vector<rispp::isa::AtomInfo> infos;
  for (std::size_t a = 0; a < atoms; ++a) {
    infos.push_back({.name = "A" + std::to_string(a),
                     .hardware = {},
                     .rotatable = true});
    // A real transfer size so manager-level properties rotate over nonzero
    // windows; constant (no rng draw) to keep the random stream — and the
    // libraries every existing property test sees — unchanged.
    infos.back().hardware.bitstream_bytes = 30000;
  }
  AtomCatalog cat(std::move(infos));

  const std::size_t sis = 1 + rng.below(3);
  std::vector<SpecialInstruction> list;
  for (std::size_t s = 0; s < sis; ++s) {
    const std::uint32_t sw = 200 + static_cast<std::uint32_t>(rng.below(800));
    std::vector<MoleculeOption> options;
    const std::size_t count = 1 + rng.below(4);
    std::uint32_t cycles = sw / (2 + static_cast<std::uint32_t>(rng.below(8)));
    for (std::size_t m = 0; m < count; ++m) {
      Molecule mol(cat.size());
      bool nonzero = false;
      for (std::size_t a = 0; a < cat.size(); ++a) {
        const auto c = rng.below(3);
        mol.set(a, static_cast<rispp::atom::Count>(c));
        nonzero |= c > 0;
      }
      if (!nonzero) mol.set(rng.below(cat.size()), 1);
      options.push_back({mol, std::max<std::uint32_t>(cycles, 1)});
      cycles = std::max<std::uint32_t>(cycles / 2, 1);  // later = faster-ish
    }
    list.emplace_back("S" + std::to_string(s), sw, std::move(options));
  }
  return SiLibrary(std::move(cat), std::move(list));
}

/// Plan feasibility, step soundness and budget monotonicity for one library;
/// demands are drawn from `rng`.
void check_plan_invariants(const SiLibrary& lib,
                           rispp::util::Xoshiro256& rng) {
  const GreedySelector sel(lib);

  std::vector<ForecastDemand> demands;
  for (std::size_t s = 0; s < lib.size(); ++s)
    demands.push_back(
        {s, 1.0 + static_cast<double>(rng.below(500)), 1.0, -1});

  for (std::uint64_t budget = 0; budget <= 8; ++budget) {
    const auto plan = sel.plan(demands, budget);
    const auto& cat = lib.catalog();

    // Feasibility: the target never exceeds the budget.
    EXPECT_LE(cat.rotatable_determinant(plan.target), budget);

    // Step soundness: steps sum to the target, each strictly improves its
    // SI, and the final target supports each step's promised latency.
    Molecule sum(cat.size());
    for (const auto& step : plan.steps) {
      EXPECT_LT(step.new_cycles, step.old_cycles);
      EXPECT_FALSE(step.additional.is_zero());
      EXPECT_GT(step.gain_per_container, 0.0);
      sum = sum.plus(step.additional);
      EXPECT_LE(lib.at(step.si_index).cycles_with(plan.target, cat),
                step.new_cycles);
    }
    EXPECT_EQ(sum, plan.target);

    // Benefit is non-negative and monotone in budget.
    EXPECT_GE(sel.benefit(plan.target, demands), -1e-9);
    if (budget > 0) {
      const auto smaller = sel.plan(demands, budget - 1);
      EXPECT_GE(sel.benefit(plan.target, demands),
                sel.benefit(smaller.target, demands) - 1e-9);
    }
  }
}

/// Greedy stays within 50 % of the exhaustive optimum (and never beats it).
void check_greedy_within_half(const SiLibrary& lib,
                              rispp::util::Xoshiro256& rng) {
  const GreedySelector sel(lib);
  std::vector<ForecastDemand> demands;
  for (std::size_t s = 0; s < lib.size(); ++s)
    demands.push_back(
        {s, 1.0 + static_cast<double>(rng.below(500)), 1.0, -1});

  for (std::uint64_t budget : {2ull, 4ull, 6ull}) {
    const auto greedy = sel.plan(demands, budget);
    const auto best = sel.exhaustive(demands, budget);
    const double g = sel.benefit(greedy.target, demands);
    const double b = sel.benefit(best.target, demands);
    EXPECT_GE(g, 0.5 * b) << "budget " << budget;
    EXPECT_LE(g, b + 1e-9) << "budget " << budget;  // exhaustive is optimal
  }
}

/// Whatever the random container state — loaded, mid-rotation, in fault
/// backoff, quarantined — choose_victim never sacrifices a container whose
/// transfer is still in flight, never targets a blocked one, and never
/// evicts an Atom the target still needs.
void check_replacement_victims(const SiLibrary& lib,
                               rispp::util::Xoshiro256& rng) {
  const auto& cat = lib.catalog();
  const Cycle now = 10000;

  // Only rotatable Atoms ever enter a container; generated catalogs also
  // carry static movers. For the all-rotatable random_library catalogs the
  // index map is the identity, so the historical rng stream is unchanged.
  std::vector<std::size_t> rotatable;
  for (std::size_t a = 0; a < cat.size(); ++a)
    if (cat.at(a).rotatable) rotatable.push_back(a);
  ASSERT_FALSE(rotatable.empty());

  ContainerFile file(6, cat);
  for (unsigned c = 0; c < file.size(); ++c) {
    const auto kind = rotatable[rng.below(rotatable.size())];
    switch (rng.below(5)) {
      case 0:  // empty
        break;
      case 1:  // completed load
        file.start_rotation(c, kind, now - 1, 0);
        break;
      case 2:  // mid-rotation: transfer still in flight at `now`
        file.start_rotation(c, kind, now + 500 + rng.below(2000), 0);
        break;
      case 3:  // failed load, still inside its backoff window
        file.start_rotation(c, kind, now - 1, 0);
        ASSERT_FALSE(file.on_rotation_failed(c, kind, now - 1, 10, 5000));
        break;
      default:  // failed once with a zero retry budget: quarantined
        file.start_rotation(c, kind, now - 1, 0);
        ASSERT_TRUE(file.on_rotation_failed(c, kind, now - 1, 0, 5000));
        break;
    }
  }
  file.refresh(now);

  for (int trial = 0; trial < 20; ++trial) {
    // Draw a count for every component (keeps the stream), but the target
    // configuration itself only ever demands rotatable Atoms.
    Molecule target(cat.size());
    for (std::size_t a = 0; a < cat.size(); ++a) {
      const auto c = static_cast<rispp::atom::Count>(rng.below(3));
      if (cat.at(a).rotatable) target.set(a, c);
    }
    for (const auto policy :
         {VictimPolicy::LruExcess, VictimPolicy::MruExcess,
          VictimPolicy::RoundRobinExcess}) {
      const auto victim = file.choose_victim(target, now, policy);
      if (!victim) continue;
      const auto& ac = file.at(*victim);
      EXPECT_FALSE(ac.busy(now))
          << "victim " << *victim << " has a transfer in flight";
      EXPECT_FALSE(ac.blocked(now))
          << "victim " << *victim << " is quarantined or backing off";
      // Needed atoms are never evicted: whatever the victim holds (or is
      // committed to hold) is excess over the target.
      if (const auto held = ac.atom ? ac.atom : ac.loading) {
        EXPECT_GT(file.committed_atoms()[*held], target[*held])
            << "victim " << *victim << " holds a needed atom";
      }
    }
  }
}

/// Under a hostile fault schedule that quarantines containers as the run
/// progresses, the platform never counts on a quarantined AC — quarantined
/// containers stay empty forever and the committed configuration always
/// fits into the surviving budget.
void check_quarantine_planning(const SiLibrary& lib, std::uint64_t fault_seed,
                               rispp::util::Xoshiro256& rng) {
  RtConfig cfg;
  cfg.atom_containers = 4;
  cfg.faults = rispp::hw::FaultModel::probabilistic(fault_seed, 0.6);
  cfg.max_rotation_retries = 0;  // first failure quarantines
  cfg.retry_backoff_cycles = 200;
  RisppManager mgr(rispp::isa::borrow(lib), cfg);

  Cycle now = 0;
  for (int op = 0; op < 120; ++op) {
    now += 1 + rng.below(20000);
    const auto si = static_cast<std::size_t>(rng.below(lib.size()));
    switch (rng.below(3)) {
      case 0:
        mgr.forecast(si, 50 + rng.below(1000), 1.0, now);
        break;
      case 1:
        (void)mgr.execute(si, now);
        break;
      default:
        mgr.poll(now);
        break;
    }
    ASSERT_LE(mgr.committed_atoms().determinant(),
              mgr.containers().usable_count())
        << "committed configuration counts on a quarantined container";
    for (unsigned c = 0; c < mgr.containers().size(); ++c) {
      const auto& ac = mgr.containers().at(c);
      if (!ac.quarantined) continue;
      EXPECT_FALSE(ac.atom.has_value())
          << "quarantined container " << c << " still holds an atom";
      EXPECT_FALSE(ac.loading.has_value())
          << "quarantined container " << c << " is rotation target";
    }
  }
}

class SelectionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionProperties, PlanInvariantsOnRandomLibraries) {
  rispp::util::Xoshiro256 rng(GetParam());
  const auto lib = random_library(rng);
  check_plan_invariants(lib, rng);
}

TEST_P(SelectionProperties, GreedyWithinHalfOfExhaustive) {
  // Greedy marginal-gain selection has no universal optimality guarantee on
  // arbitrary molecule lattices, but on these random instances it must stay
  // within 50 % of the exhaustive optimum (empirically it is far closer;
  // the H.264 library is exact — see rt_selection_test).
  rispp::util::Xoshiro256 rng(GetParam() * 7919);
  const auto lib = random_library(rng);
  check_greedy_within_half(lib, rng);
}

TEST_P(SelectionProperties, ReplacementNeverEvictsMidRotationOrBlocked) {
  rispp::util::Xoshiro256 rng(GetParam() * 104729);
  const auto lib = random_library(rng);
  check_replacement_victims(lib, rng);
}

TEST_P(SelectionProperties, SelectionPlansAroundQuarantinedContainers) {
  const std::uint64_t seed = GetParam();
  rispp::util::Xoshiro256 rng(seed * 31337);
  const auto lib = random_library(rng);
  check_quarantine_planning(lib, seed, rng);
}

INSTANTIATE_TEST_SUITE_P(RandomLibraries, SelectionProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

/// The same properties over the genlib_fixture population. The failure
/// message names the generator seed (the gtest param) and the full
/// parameter line.
class GeneratedSelectionProperties
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    SCOPED_TRACE("genlib " + genlib_fixture::matrix_config(GetParam())
                                 .describe());
  }
};

TEST_P(GeneratedSelectionProperties, PlanInvariants) {
  rispp::util::Xoshiro256 rng(GetParam() * 6151);
  check_plan_invariants(genlib_fixture::generated_library(GetParam()), rng);
}

TEST_P(GeneratedSelectionProperties, GreedyWithinHalfOfExhaustive) {
  // Exhaustive selection enumerates Molecule combinations; bound the
  // instance size so the optimum stays tractable.
  const auto lib = genlib_fixture::generated_library(GetParam());
  std::size_t options = 0;
  for (const auto& si : lib.sis()) options += si.options().size();
  if (lib.size() > 4 || options > 16) GTEST_SKIP() << "instance too large";
  rispp::util::Xoshiro256 rng(GetParam() * 7919);
  check_greedy_within_half(lib, rng);
}

TEST_P(GeneratedSelectionProperties, ReplacementNeverEvictsMidRotationOrBlocked) {
  rispp::util::Xoshiro256 rng(GetParam() * 104729);
  check_replacement_victims(genlib_fixture::generated_library(GetParam()),
                            rng);
}

TEST_P(GeneratedSelectionProperties, SelectionPlansAroundQuarantine) {
  const std::uint64_t seed = GetParam();
  rispp::util::Xoshiro256 rng(seed * 31337);
  check_quarantine_planning(genlib_fixture::generated_library(seed), seed,
                            rng);
}

INSTANTIATE_TEST_SUITE_P(GeneratedLibraries, GeneratedSelectionProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
