/// Property testing of the Molecule selector over RANDOM SI libraries (not
/// just the paper's nested H.264 lattice): plan feasibility, step soundness,
/// monotonicity in budget, and bounded loss vs the exhaustive optimum.

#include <gtest/gtest.h>

#include "rispp/rt/selection.hpp"
#include "rispp/util/rng.hpp"

namespace {

using namespace rispp::rt;
using rispp::atom::Molecule;
using rispp::isa::AtomCatalog;
using rispp::isa::MoleculeOption;
using rispp::isa::SiLibrary;
using rispp::isa::SpecialInstruction;

SiLibrary random_library(rispp::util::Xoshiro256& rng) {
  const std::size_t atoms = 2 + rng.below(4);
  std::vector<rispp::isa::AtomInfo> infos;
  for (std::size_t a = 0; a < atoms; ++a)
    infos.push_back({.name = "A" + std::to_string(a),
                     .hardware = {},
                     .rotatable = true});
  AtomCatalog cat(std::move(infos));

  const std::size_t sis = 1 + rng.below(3);
  std::vector<SpecialInstruction> list;
  for (std::size_t s = 0; s < sis; ++s) {
    const std::uint32_t sw = 200 + static_cast<std::uint32_t>(rng.below(800));
    std::vector<MoleculeOption> options;
    const std::size_t count = 1 + rng.below(4);
    std::uint32_t cycles = sw / (2 + static_cast<std::uint32_t>(rng.below(8)));
    for (std::size_t m = 0; m < count; ++m) {
      Molecule mol(cat.size());
      bool nonzero = false;
      for (std::size_t a = 0; a < cat.size(); ++a) {
        const auto c = rng.below(3);
        mol.set(a, static_cast<rispp::atom::Count>(c));
        nonzero |= c > 0;
      }
      if (!nonzero) mol.set(rng.below(cat.size()), 1);
      options.push_back({mol, std::max<std::uint32_t>(cycles, 1)});
      cycles = std::max<std::uint32_t>(cycles / 2, 1);  // later = faster-ish
    }
    list.emplace_back("S" + std::to_string(s), sw, std::move(options));
  }
  return SiLibrary(std::move(cat), std::move(list));
}

class SelectionProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SelectionProperties, PlanInvariantsOnRandomLibraries) {
  rispp::util::Xoshiro256 rng(GetParam());
  const auto lib = random_library(rng);
  const GreedySelector sel(lib);

  std::vector<ForecastDemand> demands;
  for (std::size_t s = 0; s < lib.size(); ++s)
    demands.push_back(
        {s, 1.0 + static_cast<double>(rng.below(500)), 1.0, -1});

  for (std::uint64_t budget = 0; budget <= 8; ++budget) {
    const auto plan = sel.plan(demands, budget);
    const auto& cat = lib.catalog();

    // Feasibility: the target never exceeds the budget.
    EXPECT_LE(cat.rotatable_determinant(plan.target), budget);

    // Step soundness: steps sum to the target, each strictly improves its
    // SI, and the final target supports each step's promised latency.
    Molecule sum(cat.size());
    for (const auto& step : plan.steps) {
      EXPECT_LT(step.new_cycles, step.old_cycles);
      EXPECT_FALSE(step.additional.is_zero());
      EXPECT_GT(step.gain_per_container, 0.0);
      sum = sum.plus(step.additional);
      EXPECT_LE(lib.at(step.si_index).cycles_with(plan.target, cat),
                step.new_cycles);
    }
    EXPECT_EQ(sum, plan.target);

    // Benefit is non-negative and monotone in budget.
    EXPECT_GE(sel.benefit(plan.target, demands), -1e-9);
    if (budget > 0) {
      const auto smaller = sel.plan(demands, budget - 1);
      EXPECT_GE(sel.benefit(plan.target, demands),
                sel.benefit(smaller.target, demands) - 1e-9);
    }
  }
}

TEST_P(SelectionProperties, GreedyWithinHalfOfExhaustive) {
  // Greedy marginal-gain selection has no universal optimality guarantee on
  // arbitrary molecule lattices, but on these random instances it must stay
  // within 50 % of the exhaustive optimum (empirically it is far closer;
  // the H.264 library is exact — see rt_selection_test).
  rispp::util::Xoshiro256 rng(GetParam() * 7919);
  const auto lib = random_library(rng);
  const GreedySelector sel(lib);
  std::vector<ForecastDemand> demands;
  for (std::size_t s = 0; s < lib.size(); ++s)
    demands.push_back(
        {s, 1.0 + static_cast<double>(rng.below(500)), 1.0, -1});

  for (std::uint64_t budget : {2ull, 4ull, 6ull}) {
    const auto greedy = sel.plan(demands, budget);
    const auto best = sel.exhaustive(demands, budget);
    const double g = sel.benefit(greedy.target, demands);
    const double b = sel.benefit(best.target, demands);
    EXPECT_GE(g, 0.5 * b) << "budget " << budget;
    EXPECT_LE(g, b + 1e-9) << "budget " << budget;  // exhaustive is optimal
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLibraries, SelectionProperties,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
