/// The Fig-12 workload model: calibration against the paper's Opt.SW number
/// and consistency between the cycle model, the trace generator, and the
/// simulator.

#include <gtest/gtest.h>

#include "rispp/h264/encoder.hpp"
#include "rispp/h264/workload.hpp"
#include "rispp/sim/simulator.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::h264;
using rispp::isa::SiLibrary;

class Workload : public ::testing::Test {
 protected:
  SiLibrary lib_ = SiLibrary::h264();
};

TEST_F(Workload, SoftwareCyclesPerMbMatchPaperExactly) {
  // Fig 12 "Opt. SW": 201,065 cycles per macroblock.
  EXPECT_EQ(software_cycles_per_mb(lib_, MbCounts{}, MbCycleModel{}), 201065u);
}

TEST_F(Workload, OverheadBreakdown) {
  const MbCycleModel m{};
  const MbCounts c{};
  // 120·256 + 300·16 + 250·24 + 8151 = 49,671 non-SI cycles.
  EXPECT_EQ(m.overhead_cycles(c), 49671u);
}

TEST_F(Workload, IdealHwCyclesShrinkWithBudgetAndSaturate) {
  const MbCounts c{};
  const MbCycleModel m{};
  const auto sw = software_cycles_per_mb(lib_, c, m);
  std::uint64_t prev = sw;
  for (std::uint64_t budget : {4ull, 5ull, 6ull, 16ull}) {
    const auto hw = ideal_hw_cycles_per_mb(lib_, c, m, budget);
    EXPECT_LE(hw, prev);
    prev = hw;
  }
  // Paper: minimal-atom configuration is >3x faster than software.
  const auto hw4 = ideal_hw_cycles_per_mb(lib_, c, m, 4);
  EXPECT_GT(static_cast<double>(sw) / static_cast<double>(hw4), 3.0);
  // Amdahl: going from 4 to 16 atoms gains comparatively little.
  const auto hw16 = ideal_hw_cycles_per_mb(lib_, c, m, 16);
  EXPECT_LT(static_cast<double>(hw4) / static_cast<double>(hw16), 1.15);
}

TEST_F(Workload, MbCountsMatchTheFunctionalEncoder) {
  // The trace generator and the functional encoder must agree on the SI mix.
  const VideoGenerator gen(64, 48, 11);
  const Encoder enc;
  const auto st = enc.encode_macroblock(gen.frame(1), gen.frame(0), 0, 0);
  const MbCounts c{};
  EXPECT_EQ(st.satd_ops, c.satd);
  EXPECT_EQ(st.dct_ops, c.dct);
  EXPECT_EQ(st.ht4_ops, c.ht4);
  EXPECT_EQ(st.ht2_ops, c.ht2);
}

TEST_F(Workload, TraceWithoutForecastsReproducesSoftwareTotal) {
  TraceParams p;
  p.macroblocks = 3;
  p.forecast_every_mbs = 0;  // forecasting disabled → stays in software
  const auto trace = make_encode_trace(lib_, p);
  rispp::sim::Simulator sim(borrow(lib_), {});
  sim.add_task({"enc", trace});
  const auto r = sim.run();
  EXPECT_EQ(r.total_cycles,
            3u * software_cycles_per_mb(lib_, p.counts, p.model));
  EXPECT_EQ(r.rotations, 0u);
}

TEST_F(Workload, TraceSiTotalsMatchCounts) {
  TraceParams p;
  p.macroblocks = 5;
  const auto trace = make_encode_trace(lib_, p);
  rispp::sim::Simulator sim(borrow(lib_), {});
  sim.add_task({"enc", trace});
  const auto r = sim.run();
  EXPECT_EQ(r.si("SATD_4x4").invocations, 5u * p.counts.satd);
  EXPECT_EQ(r.si("DCT_4x4").invocations, 5u * p.counts.dct);
  EXPECT_EQ(r.si("HT_4x4").invocations, 5u * p.counts.ht4);
  EXPECT_EQ(r.si("HT_2x2").invocations, 5u * p.counts.ht2);
}

TEST_F(Workload, ForecastedRunApproachesIdealAfterWarmup) {
  // Simulate enough macroblocks that the rotation transient amortizes; the
  // per-MB average must land between the ideal-hardware bound and software.
  TraceParams p;
  p.macroblocks = 60;
  rispp::sim::SimConfig cfg;
  cfg.rt.atom_containers = 4;
  cfg.rt.record_events = false;
  rispp::sim::Simulator sim(borrow(lib_), cfg);
  sim.add_task({"enc", make_encode_trace(lib_, p)});
  const auto r = sim.run();
  const double per_mb =
      static_cast<double>(r.total_cycles) / static_cast<double>(p.macroblocks);
  const auto ideal = ideal_hw_cycles_per_mb(lib_, p.counts, p.model, 4);
  const auto sw = software_cycles_per_mb(lib_, p.counts, p.model);
  EXPECT_GT(per_mb, static_cast<double>(ideal) - 1.0);
  EXPECT_LT(per_mb, static_cast<double>(sw));
  // Within 15 % of ideal after warm-up — the paper's 4-Atom 60,244 vs our
  // ideal bound has the same relationship.
  EXPECT_LT(per_mb, 1.15 * static_cast<double>(ideal));
}

TEST_F(Workload, RejectsZeroMacroblocks) {
  TraceParams p;
  p.macroblocks = 0;
  EXPECT_THROW(make_encode_trace(lib_, p), rispp::util::PreconditionError);
}

}  // namespace
