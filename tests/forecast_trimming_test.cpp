/// The Fig-5 trimming algorithm: per basic block, FC candidates whose
/// representing Meta-Molecules cannot fit the Atom Containers together are
/// truncated, worst speed-up-per-container first; clusters where no removal
/// frees a container trigger the line-11/12 abort.

#include <gtest/gtest.h>

#include "rispp/forecast/trimming.hpp"

namespace {

using namespace rispp::forecast;
using rispp::atom::Molecule;
using rispp::isa::AtomCatalog;
using rispp::isa::MoleculeOption;
using rispp::isa::SiLibrary;
using rispp::isa::SpecialInstruction;

FcCandidate cand(std::size_t si) {
  FcCandidate c;
  c.si_index = si;
  c.probability = 1.0;
  c.expected_executions = 100;
  return c;
}

/// Two-atom catalog for synthetic cases.
AtomCatalog tiny_catalog() {
  return AtomCatalog({{.name = "A", .hardware = {}, .rotatable = true},
                      {.name = "B", .hardware = {}, .rotatable = true}});
}

TEST(Trimming, KeepsEverythingWhenItFits) {
  const auto lib = SiLibrary::h264();
  // All four SIs' Reps united exceed 4 containers, but at 16 they all fit.
  std::vector<FcCandidate> cands{cand(0), cand(1), cand(2), cand(3)};
  const auto r = trim_candidates(cands, lib, 16);
  EXPECT_EQ(r.kept.size(), 4u);
  EXPECT_TRUE(r.removed.empty());
  EXPECT_FALSE(r.aborted);
}

TEST(Trimming, RemovesWorstSpeedupPerResource) {
  // SI 0: huge speed-up, needs atom A. SI 1: tiny speed-up, needs atom B.
  // With one container, SI 1 must be the one removed.
  SiLibrary lib(tiny_catalog(),
                {SpecialInstruction("FAST", 1000, {{Molecule{1, 0}, 10}}),
                 SpecialInstruction("SLOW", 100, {{Molecule{0, 1}, 90}})});
  std::vector<FcCandidate> cands{cand(0), cand(1)};
  const auto r = trim_candidates(cands, lib, 1);
  ASSERT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(cands[r.kept.front()].si_index, lib.index_of("FAST"));
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(cands[r.removed.front()].si_index, lib.index_of("SLOW"));
}

TEST(Trimming, AbortsOnNonReducibleCluster) {
  // The paper's example: Molecules (1,0), (0,1), (1,1) — removing any single
  // SI never reduces sup(M), so the algorithm must abort (lines 11/12)
  // rather than discard the whole cluster.
  SiLibrary lib(tiny_catalog(),
                {SpecialInstruction("S1", 100, {{Molecule{1, 0}, 10}}),
                 SpecialInstruction("S2", 100, {{Molecule{0, 1}, 10}}),
                 SpecialInstruction("S3", 100, {{Molecule{1, 1}, 10}})});
  std::vector<FcCandidate> cands{cand(0), cand(1), cand(2)};
  const auto r = trim_candidates(cands, lib, 1);  // sup = (1,1) needs 2 > 1
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.kept.size(), 3u);  // nothing was discarded
}

TEST(Trimming, RemovesUntilSupFits) {
  // Three SIs with disjoint atoms (each Rep = 2 of its own atom kind).
  AtomCatalog cat({{.name = "A", .hardware = {}, .rotatable = true},
                   {.name = "B", .hardware = {}, .rotatable = true},
                   {.name = "C", .hardware = {}, .rotatable = true}});
  SiLibrary lib(cat,
                {SpecialInstruction("SA", 400, {{Molecule{2, 0, 0}, 10}}),
                 SpecialInstruction("SB", 300, {{Molecule{0, 2, 0}, 10}}),
                 SpecialInstruction("SC", 200, {{Molecule{0, 0, 2}, 10}})});
  std::vector<FcCandidate> cands{cand(0), cand(1), cand(2)};
  // Budget 4: sup needs 6 → remove the worst (SC: lowest speed-up frees as
  // many containers as the others).
  const auto r = trim_candidates(cands, lib, 4);
  EXPECT_FALSE(r.aborted);
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(cands[r.removed.front()].si_index, lib.index_of("SC"));
  EXPECT_EQ(r.kept.size(), 2u);
}

TEST(Trimming, EmptyInputIsNoop) {
  const auto lib = SiLibrary::h264();
  const auto r = trim_candidates({}, lib, 4);
  EXPECT_TRUE(r.kept.empty());
  EXPECT_TRUE(r.removed.empty());
  EXPECT_FALSE(r.aborted);
}

TEST(Trimming, H264AllFourSisAtFourContainers) {
  // With 4 ACs, the four H.264 Reps cannot coexist (SATD's Rep alone uses
  // more); trimming must keep a non-empty subset and never panic.
  const auto lib = SiLibrary::h264();
  std::vector<FcCandidate> cands{cand(0), cand(1), cand(2), cand(3)};
  const auto r = trim_candidates(cands, lib, 4);
  EXPECT_FALSE(r.kept.empty());
  EXPECT_EQ(r.kept.size() + r.removed.size(), 4u);
}

TEST(Trimming, StaticAtomsDoNotCountAgainstContainers) {
  // An SI whose Rep is mostly static data movers needs no trimming even at
  // tiny budgets.
  AtomCatalog cat({{.name = "Ld", .hardware = {}, .rotatable = false},
                   {.name = "X", .hardware = {}, .rotatable = true}});
  SiLibrary lib(cat,
                {SpecialInstruction("S", 100, {{Molecule{4, 1}, 10}})});
  std::vector<FcCandidate> cands{cand(0)};
  const auto r = trim_candidates(cands, lib, 1);
  EXPECT_EQ(r.kept.size(), 1u);
  EXPECT_FALSE(r.aborted);
}

}  // namespace
