/// Experiment-engine tests: deterministic sweep plans and per-point seeds,
/// byte-identical ResultTables at any worker count, thread-safe sharing of
/// one immutable Platform, up-front plan validation, and the deprecated
/// session-API shims.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "rispp/exp/platform.hpp"
#include "rispp/exp/runner.hpp"
#include "rispp/exp/standard_eval.hpp"
#include "rispp/exp/sweep.hpp"
#include "rispp/isa/io.hpp"
#include "rispp/util/error.hpp"

namespace {

using namespace rispp::exp;
using rispp::util::Error;
using rispp::util::PreconditionError;

TEST(SweepPlan, GridEnumeratesLastAxisFastest) {
  Sweep sweep;
  sweep.axis("a", {"1", "2"}).axis("b", {"x", "y", "z"});
  const auto points = sweep.points();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(sweep.size(), 6u);
  EXPECT_EQ(points[0].at("a"), "1");
  EXPECT_EQ(points[0].at("b"), "x");
  EXPECT_EQ(points[1].at("b"), "y");
  EXPECT_EQ(points[2].at("b"), "z");
  EXPECT_EQ(points[3].at("a"), "2");
  EXPECT_EQ(points[3].at("b"), "x");
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
}

TEST(SweepPlan, SeedsAreDeterministicAndDistinct) {
  Sweep sweep;
  sweep.axis("a", {"1", "2", "3", "4"}).base_seed(42);
  const auto first = sweep.points();
  const auto again = sweep.points();
  ASSERT_EQ(first.size(), again.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seed, again[i].seed) << i;
    EXPECT_EQ(first[i].seed, Sweep::derive_seed(42, i));
    for (std::size_t j = i + 1; j < first.size(); ++j)
      EXPECT_NE(first[i].seed, first[j].seed);
  }
  // A different base seed moves every point's stream.
  EXPECT_NE(Sweep::derive_seed(42, 0), Sweep::derive_seed(43, 0));
}

TEST(SweepPlan, ParseGridRoundTrips) {
  const auto sweep = Sweep::parse_grid("containers=4,8;workload=enc");
  ASSERT_EQ(sweep.axes().size(), 2u);
  EXPECT_EQ(sweep.axes()[0].name, "containers");
  EXPECT_EQ(sweep.axes()[0].values,
            (std::vector<std::string>{"4", "8"}));
  EXPECT_EQ(sweep.axes()[1].name, "workload");
  EXPECT_EQ(sweep.size(), 2u);
}

TEST(SweepPlan, ParseGridRejectsMalformedSpecs) {
  EXPECT_THROW(Sweep::parse_grid("noequals"), PreconditionError);
  EXPECT_THROW(Sweep::parse_grid("=4"), PreconditionError);
  EXPECT_THROW(Sweep::parse_grid("a=,"), PreconditionError);
  EXPECT_THROW(Sweep::parse_grid("a=1;a=2"), PreconditionError);
}

TEST(SweepPlan, GridAndExplicitModesCannotMix) {
  Sweep grid;
  grid.axis("a", {"1"});
  EXPECT_THROW(grid.add_point({{"b", "2"}}), PreconditionError);
  Sweep list;
  list.add_point({{"b", "2"}});
  EXPECT_THROW(list.axis("a", {"1"}), PreconditionError);
}

TEST(SweepPlan, PointAccessors) {
  Sweep sweep;
  sweep.add_point({{"n", "7"}, {"x", "1.5"}, {"s", "abc"}});
  const auto p = sweep.points().at(0);
  EXPECT_EQ(p.get_u64("n", 0), 7u);
  EXPECT_DOUBLE_EQ(p.get_f64("x", 0), 1.5);
  EXPECT_EQ(p.get("missing", "fallback"), "fallback");
  EXPECT_EQ(p.get_u64("missing", 9), 9u);
  EXPECT_THROW(p.at("missing"), PreconditionError);
  EXPECT_THROW(p.get_u64("s", 0), PreconditionError);
  EXPECT_THROW(p.get_f64("s", 0), PreconditionError);
}

TEST(ResultTableTest, RowsSortByPointAndColumnsUnionInOrder) {
  ResultTable table;
  table.add({2, 22, {{"a", "1"}, {"c", "3"}}});
  table.add({0, 20, {{"a", "4"}, {"b", "5"}}});
  table.add({1, 21, {{"b", "6"}}});
  EXPECT_EQ(table.columns(),
            (std::vector<std::string>{"point", "seed", "a", "b", "c"}));
  EXPECT_EQ(table.csv(),
            "point,seed,a,b,c\n"
            "0,20,4,5,\n"
            "1,21,,6,\n"
            "2,22,1,,3\n");
  EXPECT_THROW(table.add({1, 0, {}}), PreconditionError);
}

TEST(ResultTableTest, JsonRendering) {
  ResultTable table;
  table.add({0, 9, {{"metric", "val\"ue"}}});
  EXPECT_EQ(table.json(),
            "{\n  \"columns\": [\"point\", \"seed\", \"metric\"],\n"
            "  \"rows\": [\n"
            "    {\"point\": 0, \"seed\": 9, \"metric\": \"val\\\"ue\"}\n"
            "  ]\n}\n");
  EXPECT_EQ(ResultTable{}.json(),
            "{\n  \"columns\": [\"point\", \"seed\"],\n  \"rows\": []\n}\n");
}

TEST(ResultTableTest, RaggedRowsRenderEmptyCellsInBothFormats) {
  ResultTable table;
  table.add({0, 10, {{"a", "1"}, {"b", "2"}}});
  table.add({1, 11, {}});  // a row with no cells at all
  table.add({2, 12, {{"b", "3"}}});
  EXPECT_EQ(table.csv(),
            "point,seed,a,b\n"
            "0,10,1,2\n"
            "1,11,,\n"
            "2,12,,3\n");
  // JSON rows carry only the cells they have; absent cells are absent keys.
  EXPECT_NE(table.json().find("{\"point\": 1, \"seed\": 11}"),
            std::string::npos);
}

TEST(ResultTableTest, DuplicateCellKeysCsvTakesFirstJsonKeepsBoth) {
  ResultTable table;
  table.add({0, 5, {{"m", "first"}, {"m", "second"}}});
  // The column union lists `m` once and CSV resolves it via the row's first
  // occurrence; JSON echoes cells verbatim, duplicates included.
  EXPECT_EQ(table.columns(),
            (std::vector<std::string>{"point", "seed", "m"}));
  EXPECT_EQ(table.csv(), "point,seed,m\n0,5,first\n");
  EXPECT_NE(table.json().find("\"m\": \"first\", \"m\": \"second\""),
            std::string::npos);
}

TEST(ResultTableTest, CsvQuotesCommasQuotesAndNewlines) {
  ResultTable table;
  table.add({0, 1,
             {{"plain", "x"},
              {"comma", "a,b"},
              {"quote", "say \"hi\""},
              {"newline", "two\nlines"}}});
  EXPECT_EQ(table.csv(),
            "point,seed,plain,comma,quote,newline\n"
            "0,1,x,\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\n");
}

TEST(ResultTableTest, OutOfOrderAddsMatchAscendingAddsByteForByte) {
  const auto row = [](std::size_t p) {
    return ResultRow{p, 100 + p, {{"v", std::to_string(p)}}};
  };
  ResultTable ascending, shuffled;
  for (const std::size_t p : {0u, 1u, 2u, 3u, 4u, 5u}) ascending.add(row(p));
  for (const std::size_t p : {4u, 0u, 5u, 2u, 1u, 3u}) shuffled.add(row(p));
  EXPECT_EQ(shuffled.csv(), ascending.csv());
  EXPECT_EQ(shuffled.json(), ascending.json());
  // Duplicates are caught on both the append fast path and the sorted
  // insert fallback.
  EXPECT_THROW(ascending.add(row(5)), PreconditionError);
  EXPECT_THROW(ascending.add(row(2)), PreconditionError);
}

TEST(PlatformTest, BuiltinsAndParetoTables) {
  for (const auto& name : Platform::builtin_names()) {
    const auto platform = Platform::builtin(name);
    EXPECT_EQ(platform->name(), name);
    for (std::size_t s = 0; s < platform->library().size(); ++s) {
      const auto direct =
          platform->library().at(s).pareto_front(platform->catalog());
      ASSERT_EQ(platform->pareto(s).size(), direct.size());
      for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(platform->pareto(s)[i].cycles, direct[i].cycles);
        EXPECT_EQ(platform->pareto(s)[i].rotatable_atoms,
                  direct[i].rotatable_atoms);
      }
    }
  }
  EXPECT_THROW(Platform::builtin("nope"), PreconditionError);
}

TEST(PlatformTest, FromFileParsesOnce) {
  const auto path = ::testing::TempDir() + "rispp_exp_lib.txt";
  {
    std::ofstream out(path);
    rispp::isa::write_si_library(out, rispp::isa::SiLibrary::h264());
  }
  const auto platform = Platform::from_file(path);
  EXPECT_EQ(platform->library().size(),
            rispp::isa::SiLibrary::h264().size());
  EXPECT_THROW(Platform::from_file("/nonexistent/lib.txt"),
               PreconditionError);
}

/// A cheap pure-ISA evaluator for scheduling-focused tests.
PointMetrics cheap_eval(const Platform& platform, const SweepPoint& point) {
  const auto& si = platform.library().find(point.at("si"));
  const auto best =
      si.best_with_budget(point.get_u64("budget", 0), platform.catalog());
  return {{"cycles",
           std::to_string(best ? best->cycles : si.software_cycles())}};
}

Sweep cheap_sweep(const Platform& platform) {
  Sweep sweep;
  std::vector<std::string> names;
  for (const auto& si : platform.library().sis()) names.push_back(si.name());
  sweep.axis("si", names)
      .axis("budget", {"0", "2", "4", "8", "16"})
      .base_seed(3);
  return sweep;
}

TEST(RunnerTest, ResultsAreByteIdenticalAtAnyWorkerCount) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto serial = Runner(platform, {1}).run(sweep, cheap_eval);
  EXPECT_EQ(serial.size(), sweep.size());
  for (const unsigned jobs : {2u, 4u, 8u}) {
    const auto parallel = Runner(platform, {jobs}).run(sweep, cheap_eval);
    EXPECT_EQ(parallel.csv(), serial.csv()) << jobs << " workers";
    EXPECT_EQ(parallel.json(), serial.json()) << jobs << " workers";
  }
}

TEST(RunnerTest, JobsZeroMeansHardwareConcurrency) {
  const Runner runner(Platform::builtin("h264"), {0});
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(RunnerTest, EvaluatorExceptionsPropagateToTheCaller) {
  const auto platform = Platform::builtin("h264");
  const auto sweep = cheap_sweep(*platform);
  const auto faulty = [](const Platform& p, const SweepPoint& point) {
    if (point.index == 7) throw PreconditionError("point 7 is cursed");
    return cheap_eval(p, point);
  };
  for (const unsigned jobs : {1u, 4u})
    EXPECT_THROW(Runner(platform, {jobs}).run(sweep, faulty),
                 PreconditionError);
}

TEST(RunnerTest, ConcurrentRunnersShareOnePlatformSafely) {
  // Two full sweeps race on the same immutable snapshot; both must match
  // the serial reference (the sanitizer presets watch the memory accesses).
  const auto platform = Platform::builtin("h264_frame");
  Sweep sweep;
  sweep.axis("workload", {"enc", "dec"})
      .axis("containers", {"4", "8"})
      .axis("frames", {"1"})
      .axis("mb", {"8"});
  const auto reference = Runner(platform, {1}).run(sweep, run_sim_point);
  std::string a, b;
  std::thread ta([&] { a = Runner(platform, {2}).run(sweep, run_sim_point).csv(); });
  std::thread tb([&] { b = Runner(platform, {2}).run(sweep, run_sim_point).csv(); });
  ta.join();
  tb.join();
  EXPECT_EQ(a, reference.csv());
  EXPECT_EQ(b, reference.csv());
}

TEST(StandardEval, SweepValidationFailsFastOnTypos) {
  const auto platform = Platform::builtin("h264");
  // Unknown policy key: rejected before any worker runs, with the
  // registered keys listed (the util::Error contract of rt::validate).
  Sweep bad_policy;
  bad_policy.axis("selector", {"greedy", "greedyy"});
  try {
    run_sim_sweep(platform, bad_policy, 2);
    FAIL() << "expected util::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("greedy"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("exhaustive"), std::string::npos);
  }
  Sweep bad_driving;
  bad_driving.axis("driving", {"sometimes"});
  EXPECT_THROW(validate_sim_sweep(bad_driving), PreconditionError);
  Sweep bad_workload;
  bad_workload.axis("workload", {"doom"});
  EXPECT_THROW(validate_sim_sweep(bad_workload), PreconditionError);
  Sweep good;
  good.axis("workload", {"enc"}).axis("replacement", {"lru", "mru"});
  EXPECT_NO_THROW(validate_sim_sweep(good));
}

TEST(StandardEval, JitterDrawsFromThePointSeed) {
  const auto platform = Platform::builtin("h264");
  Sweep sweep;
  sweep.axis("workload", {"fig7"})
      .axis("mb", {"4"})
      .axis("jitter", {"0.2"});
  const auto first = run_sim_sweep(platform, sweep, 1);
  const auto again = run_sim_sweep(platform, sweep, 2);
  EXPECT_EQ(first.csv(), again.csv());  // same seeds → same jitter
  Sweep reseeded = sweep;
  reseeded.base_seed(99);
  const auto other = run_sim_sweep(platform, reseeded, 1);
  EXPECT_NE(other.rows().at(0).at("cycles"),
            first.rows().at(0).at("cycles"));
}

TEST(StandardEval, PerPointReportsAreByteIdenticalAtAnyWorkerCount) {
  // A `report_dir` axis makes every point drop a run report; the payload
  // carries only the point label (no paths, no times), so the bytes must
  // not depend on the worker count that produced them.
  const auto platform = Platform::builtin("h264_frame");
  const auto run_with = [&](unsigned jobs, const std::string& dir) {
    std::filesystem::create_directories(dir);
    Sweep sweep;
    sweep.axis("workload", {"enc", "dec"})
        .axis("containers", {"4", "6"})
        .axis("frames", {"1"})
        .axis("mb", {"8"})
        .axis("report_dir", {dir})
        .base_seed(1);
    (void)run_sim_sweep(platform, sweep, jobs);
    std::vector<std::string> reports;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      std::ifstream in(dir + "/point_" + std::to_string(i) + ".report.json",
                       std::ios::binary);
      EXPECT_TRUE(in.good()) << "missing report for point " << i;
      std::stringstream ss;
      ss << in.rdbuf();
      reports.push_back(ss.str());
    }
    return reports;
  };
  const auto serial = run_with(1, ::testing::TempDir() + "rispp_reports_j1");
  const auto parallel = run_with(4, ::testing::TempDir() + "rispp_reports_j4");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << i;
    EXPECT_EQ(serial[i], parallel[i]) << "report for point " << i
                                      << " depends on the worker count";
  }
  EXPECT_NE(serial[0].find("\"scenario\": \"point_0\""), std::string::npos);
}

TEST(StandardEval, GoldenSweepMatchesCheckedInCsv) {
  // The exact grid the CI smoke runs through tools/rispp_sweep --jobs=2.
  auto sweep = Sweep::parse_grid(
      "workload=enc;frames=1;mb=20;containers=4,6;quantum=10000,30000");
  sweep.base_seed(1);
  const auto table =
      run_sim_sweep(Platform::builtin("h264_frame"), sweep, 2);
  std::ifstream in(std::string(RISPP_TEST_DATA_DIR) + "/sweep_golden.csv",
                   std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(table.csv(), golden.str());
}

}  // namespace
