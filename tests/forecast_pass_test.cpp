/// End-to-end compile-time pass (paper §4): candidates → trimming →
/// placement over the AES artifact, the paper's own Fig-3 study.

#include <gtest/gtest.h>

#include "rispp/aes/graph.hpp"
#include "rispp/forecast/forecast_pass.hpp"

namespace {

using namespace rispp::forecast;

ForecastConfig lenient_config() {
  ForecastConfig cfg;
  cfg.atom_containers = 4;
  cfg.alpha = 0.05;  // low energy bar so the small AES graph qualifies
  return cfg;
}

TEST(FdfParamsFor, DerivedFromLibraryAndPort) {
  const auto lib = rispp::aes::si_library();
  const auto cfg = lenient_config();
  const auto p = fdf_params_for(lib, lib.index_of("SUBBYTES"), cfg);
  EXPECT_GT(p.t_rot_cycles, 0.0);
  EXPECT_EQ(p.t_sw_cycles, 128.0);
  EXPECT_EQ(p.t_hw_cycles, 18.0);  // minimal molecule
  EXPECT_GT(p.energy_sw_per_exec, p.energy_hw_per_exec);
  // T_Rot at 100 MHz for a multi-atom Rep is in the 10^5-cycle range
  // (Table-1 bitstreams at ≈69 MB/s).
  EXPECT_GT(p.t_rot_cycles, 5e4);
  EXPECT_LT(p.t_rot_cycles, 5e6);
}

TEST(ForecastPass, AesPlanIsNonEmptyAndConsistent) {
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(1000);
  const auto plan = run_forecast_pass(g, lib, lenient_config());
  ASSERT_GT(plan.total_points(), 0u);
  for (const auto& fb : plan.blocks) {
    EXPECT_LT(fb.block, g.block_count());
    EXPECT_FALSE(fb.points.empty());
    for (const auto& p : fb.points) {
      EXPECT_EQ(p.block, fb.block);
      EXPECT_LT(p.si_index, lib.size());
      EXPECT_GT(p.probability, 0.0);
      EXPECT_LE(p.probability, 1.0);
      EXPECT_GE(p.expected_executions, p.required_executions);
    }
  }
}

TEST(ForecastPass, NoDuplicateSiPerBlock) {
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(1000);
  const auto plan = run_forecast_pass(g, lib, lenient_config());
  for (const auto& fb : plan.blocks) {
    for (std::size_t i = 0; i < fb.points.size(); ++i)
      for (std::size_t j = i + 1; j < fb.points.size(); ++j)
        EXPECT_NE(fb.points[i].si_index, fb.points[j].si_index);
  }
}

TEST(ForecastPass, FcPlanLookup) {
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(500);
  const auto plan = run_forecast_pass(g, lib, lenient_config());
  ASSERT_FALSE(plan.blocks.empty());
  const auto& first = plan.blocks.front();
  const auto* found = plan.find(first.block);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->block, first.block);
  EXPECT_EQ(plan.find(static_cast<rispp::cfg::BlockId>(9999)), nullptr);
}

TEST(ForecastPass, HigherAlphaPrunesMorePoints) {
  // α scales the energy offset: a stricter energy bar can only shrink the
  // candidate set.
  const auto lib = rispp::aes::si_library();
  const auto g = rispp::aes::build_graph(200);
  auto cfg = lenient_config();
  cfg.alpha = 0.05;
  const auto loose = run_forecast_pass(g, lib, cfg).total_points();
  cfg.alpha = 50.0;
  const auto strict = run_forecast_pass(g, lib, cfg).total_points();
  EXPECT_LE(strict, loose);
}

TEST(ForecastPass, MoreBlocksMoreLeadTimeQualifies) {
  // With very few AES blocks the per-reach expectations shrink and fewer
  // (or equal) points qualify than with a long run.
  const auto lib = rispp::aes::si_library();
  auto cfg = lenient_config();
  const auto small = run_forecast_pass(rispp::aes::build_graph(2), lib, cfg)
                         .total_points();
  const auto large = run_forecast_pass(rispp::aes::build_graph(5000), lib, cfg)
                         .total_points();
  EXPECT_LE(small, large);
}

}  // namespace
